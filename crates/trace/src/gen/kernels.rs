//! Classic computational-kernel trace generators: dense matrix multiply,
//! mergesort, hash join, and a 2D stencil. Like [`super::graph`], these
//! *execute the algorithm* over synthetic data and record the addresses
//! its array accesses would touch, giving realistic mixtures of streaming,
//! strided, and data-dependent patterns for examples and ablations beyond
//! the paper's three suites.

use super::{InstrClock, TraceSource};
use crate::record::MemAccess;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

const F64_SIZE: u64 = 8;

/// Which kernel to trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Blocked dense matmul C = A·B (tile size 16): strided + streaming.
    MatMul {
        /// square matrix dimension
        n: usize,
    },
    /// Bottom-up mergesort over an array: long streams at doubling strides.
    MergeSort {
        /// element count
        n: usize,
    },
    /// Hash join: sequential probe stream + random hash-table lookups.
    HashJoin {
        /// build-side rows (hash table size)
        build: usize,
        /// probe-side rows
        probe: usize,
    },
    /// 5-point 2D stencil sweep: three interleaved row streams.
    Stencil2D {
        /// grid edge length
        n: usize,
    },
}

mod pcs {
    pub const A: u64 = 0xA100;
    pub const B: u64 = 0xA108;
    pub const C: u64 = 0xA110;
    pub const AUX: u64 = 0xA118;
}

/// Trace generator executing a [`Kernel`] repeatedly.
pub struct KernelGen {
    kernel: Kernel,
    clock: InstrClock,
    buf: VecDeque<(u64, u64, bool)>,
    rng: StdRng,
    round_budget: usize,
}

impl KernelGen {
    /// Build a generator; `instr_gap` spaces accesses as elsewhere.
    pub fn new(kernel: Kernel, seed: u64, instr_gap: u64) -> Self {
        Self {
            kernel,
            clock: InstrClock::new(instr_gap),
            buf: VecDeque::new(),
            rng: StdRng::seed_from_u64(seed),
            round_budget: 1 << 20,
        }
    }

    fn push(&mut self, pc: u64, addr: u64, w: bool) {
        if self.buf.len() < self.round_budget {
            self.buf.push_back((pc, addr, w));
        }
    }

    fn run_round(&mut self) {
        match self.kernel {
            Kernel::MatMul { n } => self.matmul(n),
            Kernel::MergeSort { n } => self.mergesort(n),
            Kernel::HashJoin { build, probe } => self.hashjoin(build, probe),
            Kernel::Stencil2D { n } => self.stencil(n),
        }
    }

    fn matmul(&mut self, n: usize) {
        let (a0, b0, c0) = (0x10_0000_0000u64, 0x20_0000_0000, 0x30_0000_0000);
        let t = 16.min(n);
        let idx = |base: u64, r: usize, c: usize| base + (r * n + c) as u64 * F64_SIZE;
        for ii in (0..n).step_by(t) {
            for jj in (0..n).step_by(t) {
                for kk in (0..n).step_by(t) {
                    for i in ii..(ii + t).min(n) {
                        for k in kk..(kk + t).min(n) {
                            self.push(pcs::A, idx(a0, i, k), false);
                            for j in jj..(jj + t).min(n) {
                                self.push(pcs::B, idx(b0, k, j), false);
                                self.push(pcs::C, idx(c0, i, j), true);
                                if self.buf.len() >= self.round_budget {
                                    return;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn mergesort(&mut self, n: usize) {
        let (src, dst) = (0x40_0000_0000u64, 0x50_0000_0000);
        let mut width = 1;
        while width < n {
            for lo in (0..n).step_by(2 * width) {
                let mid = (lo + width).min(n);
                let hi = (lo + 2 * width).min(n);
                let (mut i, mut j, mut o) = (lo, mid, lo);
                while i < mid || j < hi {
                    // Reads from whichever run advances (synthetic
                    // comparison outcome).
                    let take_left = j >= hi || (i < mid && self.rng.gen_bool(0.5));
                    let r = if take_left {
                        let a = src + i as u64 * F64_SIZE;
                        i += 1;
                        a
                    } else {
                        let a = src + j as u64 * F64_SIZE;
                        j += 1;
                        a
                    };
                    self.push(pcs::A, r, false);
                    self.push(pcs::C, dst + o as u64 * F64_SIZE, true);
                    o += 1;
                    if self.buf.len() >= self.round_budget {
                        return;
                    }
                }
            }
            width *= 2;
        }
    }

    fn hashjoin(&mut self, build: usize, probe: usize) {
        let (tbl, rows) = (0x60_0000_0000u64, 0x70_0000_0000);
        // Probe phase only (build is a one-time stream): sequential probe
        // rows, random bucket reads.
        for p in 0..probe {
            self.push(pcs::A, rows + p as u64 * 16, false); // probe row
            let bucket = self.rng.gen_range(0..build) as u64;
            self.push(pcs::B, tbl + bucket * 32, false); // hash bucket
                                                         // chain of length 0..2
            if self.rng.gen_bool(0.3) {
                let next = self.rng.gen_range(0..build) as u64;
                self.push(pcs::AUX, tbl + next * 32, false);
            }
            if self.buf.len() >= self.round_budget {
                return;
            }
        }
    }

    fn stencil(&mut self, n: usize) {
        let (grid, out) = (0x80_0000_0000u64, 0x90_0000_0000);
        let idx = |r: usize, c: usize| grid + (r * n + c) as u64 * F64_SIZE;
        for r in 1..n - 1 {
            for c in 1..n - 1 {
                self.push(pcs::A, idx(r - 1, c), false);
                self.push(pcs::A, idx(r + 1, c), false);
                self.push(pcs::B, idx(r, c - 1), false);
                self.push(pcs::B, idx(r, c + 1), false);
                self.push(pcs::C, out + (r * n + c) as u64 * F64_SIZE, true);
                if self.buf.len() >= self.round_budget {
                    return;
                }
            }
        }
    }
}

impl TraceSource for KernelGen {
    fn next_access(&mut self) -> Option<MemAccess> {
        if self.buf.is_empty() {
            self.run_round();
        }
        let (pc, addr, w) = self.buf.pop_front()?;
        Some(MemAccess {
            instr_id: self.clock.tick(),
            pc,
            addr,
            is_write: w,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_mixes_row_and_column_access() {
        let mut g = KernelGen::new(Kernel::MatMul { n: 64 }, 1, 2);
        let t = g.collect_n(5000);
        assert_eq!(t.len(), 5000);
        // Streams exist: many +1-element deltas within the C writes.
        let c_writes: Vec<u64> = t
            .iter()
            .filter(|a| a.pc == pcs::C)
            .map(|a| a.addr)
            .collect();
        let seq = c_writes.windows(2).filter(|w| w[1] == w[0] + 8).count();
        assert!(seq * 2 > c_writes.len() / 2, "seq={seq}/{}", c_writes.len());
    }

    #[test]
    fn mergesort_doubles_stride_each_pass() {
        let mut g = KernelGen::new(Kernel::MergeSort { n: 1 << 10 }, 2, 2);
        let t = g.collect_n(8000);
        // Reads draw from two runs: both ascending.
        let reads: Vec<u64> = t
            .iter()
            .filter(|a| a.pc == pcs::A)
            .map(|a| a.addr)
            .collect();
        assert!(!reads.is_empty());
        // Writes are a perfect stream per pass.
        let writes: Vec<u64> = t
            .iter()
            .filter(|a| a.pc == pcs::C)
            .map(|a| a.addr)
            .collect();
        let seq = writes.windows(2).filter(|w| w[1] == w[0] + 8).count();
        assert!(seq * 3 > writes.len() * 2, "seq={seq}/{}", writes.len());
    }

    #[test]
    fn hashjoin_probe_is_stream_buckets_are_random() {
        let mut g = KernelGen::new(
            Kernel::HashJoin {
                build: 100_000,
                probe: 1 << 20,
            },
            3,
            2,
        );
        let t = g.collect_n(6000);
        let probes: Vec<u64> = t
            .iter()
            .filter(|a| a.pc == pcs::A)
            .map(|a| a.addr)
            .collect();
        let seq = probes
            .windows(2)
            .filter(|w| w[1] > w[0] && w[1] - w[0] <= 64)
            .count();
        assert!(seq * 10 > probes.len() * 8);
        let buckets: Vec<u64> = t
            .iter()
            .filter(|a| a.pc == pcs::B)
            .map(|a| a.addr)
            .collect();
        let near = buckets
            .windows(2)
            .filter(|w| w[0].abs_diff(w[1]) < 4096)
            .count();
        assert!(
            near * 10 < buckets.len() * 3,
            "buckets should be scattered: {near}"
        );
    }

    #[test]
    fn stencil_has_three_parallel_row_streams() {
        let n = 128;
        let mut g = KernelGen::new(Kernel::Stencil2D { n }, 4, 2);
        let t = g.collect_n(5000);
        // Rows r-1, r, r+1 are all touched within a 5-access window.
        let rowspan = (n as u64) * 8;
        let any = t.windows(5).filter(|w| {
            let min = w.iter().map(|a| a.addr).min().unwrap();
            let max = w
                .iter()
                .filter(|a| !a.is_write)
                .map(|a| a.addr)
                .max()
                .unwrap();
            max - min >= 2 * rowspan - 64 && max - min <= 2 * rowspan + 64
        });
        assert!(any.count() > 100);
    }

    #[test]
    fn kernels_are_deterministic_and_refill() {
        for k in [
            Kernel::MatMul { n: 16 },
            Kernel::MergeSort { n: 64 },
            Kernel::HashJoin {
                build: 100,
                probe: 50,
            },
            Kernel::Stencil2D { n: 16 },
        ] {
            let a = KernelGen::new(k, 9, 1).collect_n(3000);
            let b = KernelGen::new(k, 9, 1).collect_n(3000);
            assert_eq!(a, b);
            assert_eq!(a.len(), 3000, "{k:?} must refill across rounds");
        }
    }
}
