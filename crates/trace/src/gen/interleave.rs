//! Combinators that mix several [`TraceSource`]s into one trace.
//!
//! Real applications interleave pattern classes (the paper's motivating
//! observation): `InterleavedGen` round-robins across sources at a fixed
//! granularity, `PhasedGen` switches sources in long phases (program
//! phases, as SimPoint would expose), and `ProbMixGen` samples a source per
//! access with fixed probabilities.

use super::TraceSource;
use crate::record::MemAccess;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Round-robin interleave: take `burst` accesses from each source in turn.
///
/// Instruction ids are re-sequenced so the merged trace has a single
/// monotone instruction stream.
pub struct InterleavedGen {
    sources: Vec<Box<dyn TraceSource + Send>>,
    burst: usize,
    cur: usize,
    taken: usize,
    next_id: u64,
    id_gap: u64,
}

impl InterleavedGen {
    /// Interleave `sources`, taking `burst` accesses from each in turn.
    pub fn new(sources: Vec<Box<dyn TraceSource + Send>>, burst: usize, id_gap: u64) -> Self {
        assert!(!sources.is_empty() && burst > 0);
        Self {
            sources,
            burst,
            cur: 0,
            taken: 0,
            next_id: 0,
            id_gap,
        }
    }
}

impl TraceSource for InterleavedGen {
    fn next_access(&mut self) -> Option<MemAccess> {
        let n = self.sources.len();
        for _ in 0..n {
            if self.taken == self.burst {
                self.taken = 0;
                self.cur = (self.cur + 1) % n;
            }
            match self.sources[self.cur].next_access() {
                Some(mut a) => {
                    self.taken += 1;
                    a.instr_id = self.next_id;
                    self.next_id += 1 + self.id_gap;
                    return Some(a);
                }
                None => {
                    // Source exhausted: skip to next.
                    self.taken = 0;
                    self.cur = (self.cur + 1) % n;
                }
            }
        }
        None
    }
}

/// Phase-switching mix: run each source for `phase_len` accesses, cycling.
pub struct PhasedGen {
    sources: Vec<Box<dyn TraceSource + Send>>,
    phase_len: usize,
    cur: usize,
    taken: usize,
    next_id: u64,
    id_gap: u64,
}

impl PhasedGen {
    /// Cycle through `sources`, running each for `phase_len` accesses.
    pub fn new(sources: Vec<Box<dyn TraceSource + Send>>, phase_len: usize, id_gap: u64) -> Self {
        assert!(!sources.is_empty() && phase_len > 0);
        Self {
            sources,
            phase_len,
            cur: 0,
            taken: 0,
            next_id: 0,
            id_gap,
        }
    }
}

impl TraceSource for PhasedGen {
    fn next_access(&mut self) -> Option<MemAccess> {
        let n = self.sources.len();
        for _ in 0..=n {
            if self.taken == self.phase_len {
                self.taken = 0;
                self.cur = (self.cur + 1) % n;
            }
            match self.sources[self.cur].next_access() {
                Some(mut a) => {
                    self.taken += 1;
                    a.instr_id = self.next_id;
                    self.next_id += 1 + self.id_gap;
                    return Some(a);
                }
                None => {
                    self.taken = 0;
                    self.cur = (self.cur + 1) % n;
                }
            }
        }
        None
    }
}

/// Probabilistic mix: each access drawn from source `i` with probability
/// `weights[i] / sum(weights)`.
pub struct ProbMixGen {
    sources: Vec<Box<dyn TraceSource + Send>>,
    cumulative: Vec<f64>,
    rng: StdRng,
    next_id: u64,
    id_gap: u64,
}

impl ProbMixGen {
    /// Mix `sources` with the given positive `weights`.
    pub fn new(
        sources: Vec<Box<dyn TraceSource + Send>>,
        weights: &[f64],
        seed: u64,
        id_gap: u64,
    ) -> Self {
        assert_eq!(sources.len(), weights.len());
        assert!(!sources.is_empty());
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Self {
            sources,
            cumulative,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            id_gap,
        }
    }
}

impl TraceSource for ProbMixGen {
    fn next_access(&mut self) -> Option<MemAccess> {
        let x: f64 = self.rng.gen();
        let mut idx = self.cumulative.iter().position(|&c| x <= c).unwrap_or(0);
        for _ in 0..self.sources.len() {
            if let Some(mut a) = self.sources[idx].next_access() {
                a.instr_id = self.next_id;
                self.next_id += 1 + self.id_gap;
                return Some(a);
            }
            idx = (idx + 1) % self.sources.len();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{StreamGen, VecSource};

    fn fixed(addrs: &[u64]) -> Box<dyn TraceSource + Send> {
        Box::new(VecSource::new(
            addrs
                .iter()
                .enumerate()
                .map(|(i, &a)| MemAccess::load(i as u64, 0x10, a))
                .collect(),
        ))
    }

    #[test]
    fn interleave_round_robins_with_burst() {
        let mut g = InterleavedGen::new(
            vec![fixed(&[1, 2, 3, 4]), fixed(&[101, 102, 103, 104])],
            2,
            0,
        );
        let t = g.collect_n(8);
        let addrs: Vec<u64> = t.iter().map(|a| a.addr).collect();
        assert_eq!(addrs, vec![1, 2, 101, 102, 3, 4, 103, 104]);
    }

    #[test]
    fn interleave_resequences_ids() {
        let mut g = InterleavedGen::new(vec![fixed(&[1, 2]), fixed(&[3, 4])], 1, 2);
        let t = g.collect_n(4);
        let ids: Vec<u64> = t.iter().map(|a| a.instr_id).collect();
        assert_eq!(ids, vec![0, 3, 6, 9]);
    }

    #[test]
    fn interleave_handles_exhausted_sources() {
        let mut g = InterleavedGen::new(vec![fixed(&[1]), fixed(&[2, 3, 4])], 1, 0);
        let t = g.collect_n(10);
        assert_eq!(t.len(), 4);
        assert!(g.next_access().is_none());
    }

    #[test]
    fn phased_switches_in_blocks() {
        let mut g = PhasedGen::new(vec![fixed(&[1, 2, 3]), fixed(&[9, 8, 7])], 3, 0);
        let addrs: Vec<u64> = g.collect_n(6).iter().map(|a| a.addr).collect();
        assert_eq!(addrs, vec![1, 2, 3, 9, 8, 7]);
    }

    #[test]
    fn prob_mix_samples_both_sources() {
        let a: Box<dyn TraceSource + Send> = Box::new(StreamGen::new(1, 1, 1000, 0));
        let b: Box<dyn TraceSource + Send> = Box::new(StreamGen::new(2, 1, 1000, 0));
        let first_a = StreamGen::new(1, 1, 1000, 0).collect_n(1)[0].addr;
        let mut g = ProbMixGen::new(vec![a, b], &[0.5, 0.5], 99, 0);
        let t = g.collect_n(100);
        // Both underlying streams contribute (different base regions).
        let hits_a = t
            .iter()
            .filter(|x| x.addr.abs_diff(first_a) < 1 << 20)
            .count();
        assert!(hits_a > 0 && hits_a < 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn prob_mix_rejects_zero_weight() {
        let _ = ProbMixGen::new(vec![fixed(&[1])], &[0.0], 1, 0);
    }
}
