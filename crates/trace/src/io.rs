//! Plain-text trace serialization.
//!
//! The paper's artifact exchanges traces as text files between ChampSim and
//! the Python RL code. We keep a compatible spirit: one access per line,
//! `instr_id pc addr rw`, hex for pc/addr. Useful for archiving generated
//! workloads and replaying identical traces across harness runs.

use crate::gen::VecSource;
use crate::record::MemAccess;
use std::io::{self, BufRead, Write};

/// Write a trace in the line format `instr_id pc addr rw`.
pub fn write_trace<W: Write>(w: &mut W, trace: &[MemAccess]) -> io::Result<()> {
    for a in trace {
        writeln!(
            w,
            "{} {:#x} {:#x} {}",
            a.instr_id,
            a.pc,
            a.addr,
            if a.is_write { "W" } else { "R" }
        )?;
    }
    Ok(())
}

/// Parse a trace written by [`write_trace`]. Lines that are empty or start
/// with `#` are skipped; malformed lines produce an error naming the line.
pub fn read_trace<R: BufRead>(r: R) -> io::Result<Vec<MemAccess>> {
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse_err = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace line {}: bad {}", lineno + 1, what),
            )
        };
        let instr_id: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("instr_id"))?;
        let pc = it
            .next()
            .and_then(parse_hex)
            .ok_or_else(|| parse_err("pc"))?;
        let addr = it
            .next()
            .and_then(parse_hex)
            .ok_or_else(|| parse_err("addr"))?;
        let is_write = match it.next() {
            Some("R") => false,
            Some("W") => true,
            _ => return Err(parse_err("rw flag")),
        };
        out.push(MemAccess {
            instr_id,
            pc,
            addr,
            is_write,
        });
    }
    Ok(out)
}

fn parse_hex(s: &str) -> Option<u64> {
    let s = s
        .strip_prefix("0x")
        .or_else(|| s.strip_prefix("0X"))
        .unwrap_or(s);
    u64::from_str_radix(s, 16).ok()
}

/// Read a trace into a replayable [`VecSource`].
pub fn read_trace_source<R: BufRead>(r: R) -> io::Result<VecSource> {
    Ok(VecSource::new(read_trace(r)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = vec![
            MemAccess::load(0, 0x400, 0x1234_5678),
            MemAccess::store(5, 0x404, 0xdead_bee0),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\n1 0x10 0x40 R\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].pc, 0x10);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_trace("1 0x10 R".as_bytes()).is_err());
        assert!(read_trace("x 0x10 0x40 R".as_bytes()).is_err());
        assert!(read_trace("1 0x10 0x40 Q".as_bytes()).is_err());
    }

    #[test]
    fn accepts_bare_hex() {
        let t = read_trace("1 10 40 W".as_bytes()).unwrap();
        assert_eq!(t[0].pc, 0x10);
        assert!(t[0].is_write);
    }
}
