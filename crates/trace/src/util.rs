//! Small shared utilities: a fast integer hasher for simulator-side maps.
//!
//! The perf guide notes SipHash (std's default) is slow for integer keys;
//! hot simulator and prefetcher tables are keyed by block numbers, pages,
//! and PCs, so we use an Fx-style multiply-xor hasher (the rustc algorithm)
//! implemented locally to keep the dependency set to the approved list.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Fx-style hasher: `state = (state rotl 5 ^ word) * SEED` per 8-byte word.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Multiply-based states have weak low bits, but hash tables index
        // buckets with them — fold the high half down.
        self.state ^ (self.state >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works_with_integer_keys() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 64, i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(500 * 64)), Some(&500));
    }

    #[test]
    fn hasher_distributes_sequential_keys() {
        // Sequential block addresses must not collide to a few buckets.
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<FxHasher> = Default::default();
        let mut buckets = [0usize; 64];
        for i in 0..64_000u64 {
            let mut h = bh.build_hasher();
            h.write_u64(i * 64);
            buckets[(h.finish() % 64) as usize] += 1;
        }
        let min = *buckets.iter().min().unwrap();
        let max = *buckets.iter().max().unwrap();
        assert!(
            max < 3 * min.max(1),
            "poor distribution: min={min} max={max}"
        );
    }

    #[test]
    fn bytes_and_u64_paths_agree_on_8_bytes() {
        let mut a = FxHasher::default();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = FxHasher::default();
        b.write(&0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
