//! Loopback integration tests for the serving invariants (ISSUE 4):
//! bit-identity of served decisions vs the offline sequential run (with
//! concurrent interleaved sessions), batched == batch-of-1, backpressure
//! and deadline behaviour, and graceful drain with in-flight requests.

use resemble_serve::{offline_decisions, Reply, ServeClient, ServeConfig, Server, SessionModel};
use resemble_trace::gen::stream::StreamGen;
use resemble_trace::gen::TraceSource;
use resemble_trace::MemAccess;

/// A session's synthetic workload: accesses plus deterministic hit flags.
fn session_trace(seed: u64, n: usize) -> Vec<(MemAccess, bool)> {
    let mut gen = StreamGen::new(seed, 3, 256, 0).with_write_ratio(0.1);
    gen.collect_n(n)
        .into_iter()
        .enumerate()
        .map(|(i, a)| (a, i % 3 == 0))
        .collect()
}

/// Stream a whole trace through a client with pipelining (window of
/// `window` in-flight requests), returning the decision per access.
fn serve_trace(
    addr: std::net::SocketAddr,
    model: &str,
    seed: u64,
    trace: &[(MemAccess, bool)],
    window: usize,
) -> Vec<Vec<u64>> {
    let mut client = ServeClient::connect(addr).expect("connect");
    client.hello(model, seed, true).expect("hello accepted");
    let mut decisions: Vec<Vec<u64>> = vec![Vec::new(); trace.len()];
    let mut next = 0usize;
    let mut awaiting = 0usize;
    while next < trace.len() || awaiting > 0 {
        while next < trace.len() && awaiting < window {
            let (access, hit) = trace[next];
            client.queue_access(next as u32, 0, access, hit);
            next += 1;
            awaiting += 1;
        }
        client.flush().expect("flush");
        match client.recv().expect("recv").expect("reply before EOF") {
            Reply::Decision { req_id, prefetches } => {
                decisions[req_id as usize] = prefetches;
                awaiting -= 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    client.queue_bye();
    client.flush().expect("flush bye");
    match client.recv().expect("recv goodbye") {
        Some(Reply::Goodbye { decisions: n }) => {
            assert_eq!(n, trace.len() as u64, "goodbye decision count");
        }
        other => panic!("expected Goodbye, got {other:?}"),
    }
    decisions
}

#[test]
fn served_decisions_bit_identical_to_offline_across_concurrent_sessions() {
    // Four concurrent sessions (mixed models and seeds) microbatched on
    // two shards: every session's served decisions must equal the offline
    // sequential run of its own trace, bit for bit.
    let sessions: &[(&str, u64)] = &[
        ("resemble", 101),
        ("resemble", 202),
        ("resemble_frozen", 303),
        ("bo", 404),
    ];
    let n = 1500;
    let server = Server::start(
        ServeConfig {
            shards: 2,
            max_batch: 32,
            ..ServeConfig::default()
        },
        SessionModel::default_builder(),
    )
    .expect("server starts");
    let addr = server.local_addr();

    let offline: Vec<Vec<Vec<u64>>> = sessions
        .iter()
        .map(|&(model, seed)| {
            let trace = session_trace(seed, n);
            let mut m = SessionModel::build(model, seed, true).expect("model builds");
            offline_decisions(&mut m, &trace)
        })
        .collect();

    let served: Vec<Vec<Vec<u64>>> = std::thread::scope(|s| {
        let handles: Vec<_> = sessions
            .iter()
            .map(|&(model, seed)| {
                s.spawn(move || {
                    let trace = session_trace(seed, n);
                    serve_trace(addr, model, seed, &trace, 24)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    for (i, (expect, got)) in offline.iter().zip(served.iter()).enumerate() {
        assert_eq!(expect, got, "session {i} decisions diverged from offline");
    }
    let snap = server.shutdown();
    assert_eq!(snap.sessions_opened, sessions.len() as u64);
    assert_eq!(snap.sessions_closed, sessions.len() as u64);
    assert_eq!(snap.decisions, (sessions.len() * n) as u64);
    assert!(
        snap.batch_size_hist.iter().any(|&(size, _)| size > 1),
        "microbatching never formed a batch > 1: {:?}",
        snap.batch_size_hist
    );
}

#[test]
fn forced_batch_of_1_serves_the_same_decisions() {
    let trace = session_trace(77, 800);
    let mut reference = SessionModel::build("resemble", 77, true).expect("model");
    let offline = offline_decisions(&mut reference, &trace);
    for max_batch in [1usize, 64] {
        let server = Server::start(
            ServeConfig {
                max_batch,
                ..ServeConfig::default()
            },
            SessionModel::default_builder(),
        )
        .expect("server starts");
        let got = serve_trace(server.local_addr(), "resemble", 77, &trace, 16);
        assert_eq!(got, offline, "max_batch={max_batch}");
        let snap = server.shutdown();
        if max_batch == 1 {
            assert!(
                snap.batch_size_hist.iter().all(|&(size, _)| size <= 1),
                "forced batch-of-1 formed larger batches: {:?}",
                snap.batch_size_hist
            );
        }
    }
}

#[test]
fn quantize_frozen_decisions_agree_with_f32_pooled_serving() {
    // The int8 quantized datapath is opt-in and not bit-identical to
    // f32, but on the stock frozen models its *decisions* (prefetch
    // address sets) must agree with the f32 pooled path for the vast
    // majority of accesses; any residual disagreement rate is what
    // `serve_bench` reports as the accuracy delta. Here we pin full
    // agreement on this workload — if quantization noise ever flips a
    // near-tie on these seeds, this assertion documents the new rate.
    let n = 1200;
    let seeds = [501u64, 502];
    let mut f32_decisions = Vec::new();
    let mut q_decisions = Vec::new();
    for quantize_frozen in [false, true] {
        let server = Server::start(
            ServeConfig {
                shards: 1,
                max_batch: 32,
                quantize_frozen,
                ..ServeConfig::default()
            },
            SessionModel::default_builder(),
        )
        .expect("server starts");
        let addr = server.local_addr();
        let got: Vec<Vec<Vec<u64>>> = std::thread::scope(|s| {
            let handles: Vec<_> = seeds
                .iter()
                .map(|&seed| {
                    s.spawn(move || {
                        let trace = session_trace(seed, n);
                        serve_trace(addr, "resemble_frozen", seed, &trace, 24)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client"))
                .collect()
        });
        let snap = server.shutdown();
        assert_eq!(snap.decisions, (seeds.len() * n) as u64);
        if quantize_frozen {
            assert!(
                snap.quantized_windows > 0,
                "quantized serving never took the int8 datapath"
            );
            q_decisions = got;
        } else {
            assert_eq!(snap.quantized_windows, 0);
            f32_decisions = got;
        }
    }
    let total: usize = f32_decisions.iter().map(Vec::len).sum();
    let agree: usize = f32_decisions
        .iter()
        .flatten()
        .zip(q_decisions.iter().flatten())
        .filter(|(a, b)| a == b)
        .count();
    assert_eq!(
        agree,
        total,
        "int8 decisions diverged from f32 on {}/{total} accesses; if \
         quantization noise legitimately flipped a near-tie, update this \
         pin and the documented disagreement rate",
        total - agree
    );
}

#[test]
fn slow_session_gets_bounded_queue_busy_replies() {
    // A tiny queue and a training-heavy model (full 256-batch config):
    // flooding 600 pipelined requests must bounce some with Busy instead
    // of queueing unboundedly, and every request still gets exactly one
    // reply.
    let server = Server::start(
        ServeConfig {
            shards: 1,
            max_batch: 8,
            queue_cap: 8,
            ..ServeConfig::default()
        },
        SessionModel::default_builder(),
    )
    .expect("server starts");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    client.hello("resemble", 5, false).expect("hello");
    let trace = session_trace(5, 600);
    for (i, (access, hit)) in trace.iter().enumerate() {
        client.queue_access(i as u32, 0, *access, *hit);
    }
    client.queue_bye();
    client.flush().expect("flood");
    let mut decisions = 0u64;
    let mut busy = 0u64;
    let mut replied = vec![0u32; trace.len()];
    loop {
        match client.recv().expect("recv") {
            Some(Reply::Decision { req_id, .. }) => {
                decisions += 1;
                replied[req_id as usize] += 1;
            }
            Some(Reply::Busy { req_id }) => {
                busy += 1;
                replied[req_id as usize] += 1;
            }
            Some(Reply::Goodbye { .. }) | None => break,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(
        busy > 0,
        "queue_cap=8 under a 600-request flood never said Busy"
    );
    assert_eq!(decisions + busy, trace.len() as u64);
    assert!(
        replied.iter().all(|&n| n == 1),
        "some request got zero or duplicate replies"
    );
    let snap = server.shutdown();
    assert_eq!(snap.busy_rejections, busy);
    assert_eq!(snap.decisions, decisions);
}

#[test]
fn expired_deadlines_reply_timed_out_without_touching_the_model() {
    // Same flood, but with 1µs deadlines: requests that sit in the queue
    // behind slow training expire and answer TimedOut. The first request
    // has no deadline so the session always serves at least one decision.
    let server = Server::start(
        ServeConfig {
            shards: 1,
            max_batch: 4,
            queue_cap: 512,
            ..ServeConfig::default()
        },
        SessionModel::default_builder(),
    )
    .expect("server starts");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    client.hello("resemble", 9, false).expect("hello");
    let trace = session_trace(9, 300);
    for (i, (access, hit)) in trace.iter().enumerate() {
        let deadline_us = if i == 0 { 0 } else { 1 };
        client.queue_access(i as u32, deadline_us, *access, *hit);
    }
    client.queue_bye();
    client.flush().expect("flood");
    let (mut decisions, mut timed_out) = (0u64, 0u64);
    let goodbye_count: u64;
    loop {
        match client.recv().expect("recv") {
            Some(Reply::Decision { .. }) => decisions += 1,
            Some(Reply::TimedOut { .. }) => timed_out += 1,
            Some(Reply::Busy { .. }) => panic!("queue_cap=512 should not bounce 300 requests"),
            Some(Reply::Goodbye { decisions: n }) => {
                goodbye_count = n;
                break;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(
        timed_out > 0,
        "1µs deadlines behind slow training never expired"
    );
    assert_eq!(decisions + timed_out, trace.len() as u64);
    // Goodbye's decision count only counts served decisions, proving the
    // expired requests never reached the model.
    assert_eq!(goodbye_count, decisions);
    let snap = server.shutdown();
    assert_eq!(snap.timeouts, timed_out);
}

#[test]
fn graceful_drain_flushes_in_flight_requests_with_final_snapshot() {
    let dir = std::env::temp_dir().join(format!("resemble_drain_{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("drain.jsonl");
    let _ = std::fs::remove_file(&path);
    let server = Server::start(
        ServeConfig {
            shards: 1,
            max_batch: 8,
            queue_cap: 1024,
            snapshot_path: Some(path.clone()),
            ..ServeConfig::default()
        },
        SessionModel::default_builder(),
    )
    .expect("server starts");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    client.hello("resemble", 3, false).expect("hello");
    let trace = session_trace(3, 400);
    for (i, (access, hit)) in trace.iter().enumerate() {
        client.queue_access(i as u32, 0, *access, *hit);
    }
    client.flush().expect("flood");
    // Let the server ingest some of the flood, then shut down with the
    // queue still full of in-flight work.
    while server.telemetry().decisions_total() < 10 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let snap = server.shutdown();

    // Every request the server accepted was answered before exit.
    let (mut decisions, mut saw_goodbye) = (0u64, false);
    loop {
        match client.recv().expect("recv drained replies") {
            Some(Reply::Decision { .. }) => decisions += 1,
            Some(Reply::Goodbye { .. }) => saw_goodbye = true,
            Some(Reply::Busy { .. }) | Some(Reply::TimedOut { .. }) => {}
            Some(other) => panic!("unexpected reply {other:?}"),
            None => break,
        }
    }
    assert!(saw_goodbye, "drain must flush the session and say Goodbye");
    assert_eq!(snap.decisions, decisions, "snapshot vs replies disagree");
    assert!(decisions >= 10, "drain served the already-queued requests");
    assert_eq!(snap.sessions_closed, 1);
    // The final snapshot landed in the JSONL file.
    let text = std::fs::read_to_string(&path).expect("snapshot file");
    let last = text.lines().last().expect("at least the final snapshot");
    let v = serde_json::from_str(last).expect("valid JSON");
    assert_eq!(
        v.get("decisions").and_then(|x| x.as_u64()),
        Some(decisions),
        "final JSONL snapshot decision count"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unknown_model_is_rejected_with_error() {
    let server = Server::start(ServeConfig::default(), SessionModel::default_builder())
        .expect("server starts");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    let err = client
        .hello("definitely_not_a_model", 1, true)
        .expect_err("rejected");
    assert!(err.to_string().contains("definitely_not_a_model"));
    let snap = server.shutdown();
    assert_eq!(snap.sessions_opened, 0);
    assert_eq!(snap.protocol_errors, 1);
}
