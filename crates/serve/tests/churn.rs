//! Connection-churn and checkpoint integration tests (ISSUE 6): hundreds
//! of short-lived concurrent sessions must leak neither sessions nor
//! connection state, a full queue must never wedge a disconnecting
//! session, cross-session pooled serving must stay bit-identical to the
//! offline run, and checkpoints must warm-resume training state across
//! server restarts.

use resemble_serve::session::load_checkpoint_file;
use resemble_serve::{offline_decisions, Reply, ServeClient, ServeConfig, Server, SessionModel};
use resemble_trace::gen::stream::StreamGen;
use resemble_trace::gen::TraceSource;
use resemble_trace::MemAccess;

/// A session's synthetic workload: accesses plus deterministic hit flags.
fn session_trace(seed: u64, n: usize) -> Vec<(MemAccess, bool)> {
    let mut gen = StreamGen::new(seed, 3, 256, 0).with_write_ratio(0.1);
    gen.collect_n(n)
        .into_iter()
        .enumerate()
        .map(|(i, a)| (a, i % 3 == 0))
        .collect()
}

/// Stream a whole trace through a client with pipelining, returning the
/// decision per access and asserting the Goodbye count.
fn serve_trace(
    addr: std::net::SocketAddr,
    model: &str,
    seed: u64,
    trace: &[(MemAccess, bool)],
    window: usize,
) -> Vec<Vec<u64>> {
    let mut client = ServeClient::connect(addr).expect("connect");
    client.hello(model, seed, true).expect("hello accepted");
    let mut decisions: Vec<Vec<u64>> = vec![Vec::new(); trace.len()];
    let mut next = 0usize;
    let mut awaiting = 0usize;
    while next < trace.len() || awaiting > 0 {
        while next < trace.len() && awaiting < window {
            let (access, hit) = trace[next];
            client.queue_access(next as u32, 0, access, hit);
            next += 1;
            awaiting += 1;
        }
        client.flush().expect("flush");
        match client.recv().expect("recv").expect("reply before EOF") {
            Reply::Decision { req_id, prefetches } => {
                decisions[req_id as usize] = prefetches;
                awaiting -= 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    client.queue_bye();
    client.flush().expect("flush bye");
    match client.recv().expect("recv goodbye") {
        Some(Reply::Goodbye { decisions: n }) => {
            assert_eq!(n, trace.len() as u64, "goodbye decision count");
        }
        other => panic!("expected Goodbye, got {other:?}"),
    }
    decisions
}

#[test]
fn hundreds_of_churning_sessions_leak_nothing() {
    // 8 driver threads × 40 sessions each, alternating graceful Bye and
    // abrupt disconnect. The regression this guards: the old acceptor
    // kept a grow-only clone of every connection and a grow-only reader
    // JoinHandle per connection until shutdown. With the event loop,
    // connection state dies with the socket: after the drain every
    // opened connection is closed and every opened session is retired.
    const THREADS: u64 = 8;
    const SESSIONS_PER_THREAD: u64 = 40;
    const ACCESSES: usize = 8;
    let server = Server::start(
        ServeConfig {
            shards: 2,
            io_threads: 2,
            ..ServeConfig::default()
        },
        SessionModel::default_builder(),
    )
    .expect("server starts");
    let addr = server.local_addr();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..SESSIONS_PER_THREAD {
                    let seed = t * 1000 + i;
                    let trace = session_trace(seed, ACCESSES);
                    if i % 2 == 0 {
                        // Graceful: every request gets a terminal reply.
                        let got = serve_trace(addr, "stride", seed, &trace, 4);
                        assert_eq!(got.len(), ACCESSES);
                    } else {
                        // Abrupt: flood and vanish without a Bye.
                        let mut client = ServeClient::connect(addr).expect("connect");
                        client.hello("stride", seed, true).expect("hello");
                        for (k, (access, hit)) in trace.iter().enumerate() {
                            client.queue_access(k as u32, 0, *access, *hit);
                        }
                        client.flush().expect("flood");
                        drop(client);
                    }
                }
            });
        }
    });

    let snap = server.shutdown();
    let total = THREADS * SESSIONS_PER_THREAD;
    assert_eq!(snap.sessions_opened, total);
    assert_eq!(
        snap.sessions_closed, snap.sessions_opened,
        "every opened session must be retired after the drain"
    );
    assert_eq!(snap.connections_opened, total);
    assert_eq!(
        snap.connections_closed, snap.connections_opened,
        "every accepted connection must be released after the drain"
    );
    // Graceful sessions alone account for half the decisions; abrupt
    // sessions may or may not have been drained before the FIN landed.
    assert!(snap.decisions >= total / 2 * ACCESSES as u64);
}

#[test]
fn full_queue_plus_disconnect_still_retires_the_session() {
    // Regression for the Bye/queue-cap interaction: wedge a session's
    // tiny queue behind slow training, then vanish. The implicit Bye
    // must bypass the full queue — otherwise the slot (and its model)
    // leaks forever and shutdown would hang on a non-empty shard.
    let server = Server::start(
        ServeConfig {
            shards: 1,
            max_batch: 4,
            queue_cap: 2,
            ..ServeConfig::default()
        },
        SessionModel::default_builder(),
    )
    .expect("server starts");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    client.hello("resemble", 21, false).expect("hello");
    let trace = session_trace(21, 100);
    for (i, (access, hit)) in trace.iter().enumerate() {
        client.queue_access(i as u32, 0, *access, *hit);
    }
    client.flush().expect("flood");
    // Wait until the flood has demonstrably overflowed the queue, then
    // disconnect without reading a single reply.
    while server.telemetry().snapshot().busy_rejections == 0 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    drop(client);
    let snap = server.shutdown();
    assert_eq!(snap.sessions_opened, 1);
    assert_eq!(
        snap.sessions_closed, 1,
        "session wedged instead of retiring"
    );
    assert_eq!(snap.connections_opened, 1);
    assert_eq!(snap.connections_closed, 1);
    assert!(snap.busy_rejections > 0);
}

#[test]
fn pooled_frozen_sessions_stay_bit_identical_to_offline() {
    // Six concurrent frozen sessions sharing one (model, seed, fast) key
    // on a single shard: cross-session pooling batches their decision
    // windows through one shared forward, and every session must still
    // match the offline sequential run of its own trace, bit for bit.
    const SESSIONS: u64 = 6;
    const N: usize = 400;
    let server = Server::start(
        ServeConfig {
            shards: 1,
            max_batch: 32,
            cross_session: true,
            ..ServeConfig::default()
        },
        SessionModel::default_builder(),
    )
    .expect("server starts");
    let addr = server.local_addr();

    let offline: Vec<Vec<Vec<u64>>> = (0..SESSIONS)
        .map(|i| {
            let trace = session_trace(9000 + i * 7919, N);
            let mut m = SessionModel::build("resemble_frozen", 55, true).expect("model");
            offline_decisions(&mut m, &trace)
        })
        .collect();

    let served: Vec<Vec<Vec<u64>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|i| {
                s.spawn(move || {
                    let trace = session_trace(9000 + i * 7919, N);
                    serve_trace(addr, "resemble_frozen", 55, &trace, 32)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    for (i, (expect, got)) in offline.iter().zip(served.iter()).enumerate() {
        assert_eq!(expect, got, "session {i} diverged from offline");
    }
    let snap = server.shutdown();
    assert_eq!(snap.decisions, SESSIONS * N as u64);
    assert_eq!(snap.sessions_closed, SESSIONS);
    assert!(
        snap.pool_batches >= 1,
        "6 same-key pipelined sessions on one shard never pooled a window"
    );
    assert!(snap.pool_sessions >= 2 * snap.pool_batches);
}

#[test]
fn checkpoint_round_trip_warm_resumes_training_state() {
    let dir = std::env::temp_dir().join(format!("resemble_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let trace1 = session_trace(31, 300);
    let trace2 = session_trace(32, 300);

    // Server A: train a session, Bye checkpoints it to disk.
    let server_a = Server::start(
        ServeConfig {
            checkpoint_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
        SessionModel::default_builder(),
    )
    .expect("server A starts");
    let _ = serve_trace(server_a.local_addr(), "resemble", 11, &trace1, 16);
    let snap_a = server_a.shutdown();
    assert!(snap_a.checkpoints_saved >= 1, "Bye must save a checkpoint");

    // Expected continuation: a fresh model warm-started from the exact
    // file server A wrote (optimizer RNG restarts fresh by design).
    let mut expect_model = SessionModel::build("resemble", 11, true).expect("model");
    assert!(
        load_checkpoint_file(&dir, "resemble", 11, true, &mut expect_model),
        "checkpoint file must load"
    );
    let expect = offline_decisions(&mut expect_model, &trace2);

    // Server B on the same directory: the same Hello warm-starts from
    // the checkpoint, so its decisions continue the learned state.
    let server_b = Server::start(
        ServeConfig {
            checkpoint_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
        SessionModel::default_builder(),
    )
    .expect("server B starts");
    let got = serve_trace(server_b.local_addr(), "resemble", 11, &trace2, 16);
    let snap_b = server_b.shutdown();
    assert_eq!(snap_b.checkpoints_loaded, 1, "Hello must warm-load");
    assert_eq!(got, expect, "warm-resumed serving diverged from offline");

    // A cold session (no checkpoint on disk for its key) must differ
    // from nothing — just sanity that the warm path actually mattered.
    let mut cold = SessionModel::build("resemble", 11, true).expect("model");
    let cold_run = offline_decisions(&mut cold, &trace2);
    assert_ne!(
        cold_run, expect,
        "trained checkpoint should change decisions vs a cold model"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
