//! Serving telemetry: lock-free atomic counters and fixed-bucket
//! histograms, snapshotted periodically as JSONL.
//!
//! Everything here is on the per-decision hot path, so recording is a
//! handful of relaxed atomic adds — no locks, no allocation, no panics
//! (`panic-in-hot-path` covers this file). Latency uses a half-log
//! histogram: two buckets per power of two of microseconds, so reported
//! percentiles carry at most ~33% quantization error while the whole
//! histogram stays a fixed 64-slot array.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of half-log latency buckets (covers 0 µs to ~53 minutes).
const LAT_BUCKETS: usize = 64;

/// Batch sizes above this land in the overflow bucket.
const MAX_BATCH_TRACKED: usize = 256;

/// Half-log bucket index for a latency in microseconds.
fn lat_bucket(us: u64) -> usize {
    if us < 2 {
        return usize::try_from(us).unwrap_or(0);
    }
    let k = 63 - u64::from(us.leading_zeros());
    let sub = (us >> (k - 1)) & 1;
    usize::try_from(2 * k + sub)
        .unwrap_or(LAT_BUCKETS - 1)
        .min(LAT_BUCKETS - 1)
}

/// Inclusive lower edge of a latency bucket, in microseconds.
fn lat_bucket_lower(idx: usize) -> u64 {
    if idx < 2 {
        return idx as u64;
    }
    let k = (idx / 2) as u32;
    let sub = (idx % 2) as u64;
    (2 + sub) << (k - 1)
}

/// Inclusive upper edge of a latency bucket, in microseconds.
fn lat_bucket_upper(idx: usize) -> u64 {
    if idx + 1 >= LAT_BUCKETS {
        return u64::MAX;
    }
    lat_bucket_lower(idx + 1).saturating_sub(1)
}

/// Shared serving counters. One instance per server, shared by every
/// reader and shard-worker thread through an `Arc`.
#[derive(Debug)]
pub struct Telemetry {
    sessions_opened: AtomicU64,
    sessions_closed: AtomicU64,
    decisions: AtomicU64,
    prefetches: AtomicU64,
    busy_rejections: AtomicU64,
    timeouts: AtomicU64,
    events: AtomicU64,
    events_dropped: AtomicU64,
    protocol_errors: AtomicU64,
    batches: AtomicU64,
    connections_opened: AtomicU64,
    connections_closed: AtomicU64,
    pool_batches: AtomicU64,
    pool_sessions: AtomicU64,
    quantized_windows: AtomicU64,
    quantized_sessions: AtomicU64,
    checkpoints_saved: AtomicU64,
    checkpoints_loaded: AtomicU64,
    latency: [AtomicU64; LAT_BUCKETS],
    batch_sizes: [AtomicU64; MAX_BATCH_TRACKED + 1],
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Fresh zeroed telemetry.
    pub fn new() -> Self {
        Self {
            sessions_opened: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            decisions: AtomicU64::new(0),
            prefetches: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            events: AtomicU64::new(0),
            events_dropped: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            connections_opened: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            pool_batches: AtomicU64::new(0),
            pool_sessions: AtomicU64::new(0),
            quantized_windows: AtomicU64::new(0),
            quantized_sessions: AtomicU64::new(0),
            checkpoints_saved: AtomicU64::new(0),
            checkpoints_loaded: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
            batch_sizes: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// A session was accepted.
    pub fn session_opened(&self) {
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// A session finished (Bye processed or connection lost).
    pub fn session_closed(&self) {
        self.sessions_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// One decision served, with its queue+service latency and the number
    /// of prefetch addresses it issued.
    pub fn decision(&self, latency_us: u64, n_prefetches: usize) {
        self.decisions.fetch_add(1, Ordering::Relaxed);
        self.prefetches
            .fetch_add(n_prefetches as u64, Ordering::Relaxed);
        let idx = lat_bucket(latency_us);
        if let Some(b) = self.latency.get(idx) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A request was rejected with `Busy` (queue full).
    pub fn busy(&self) {
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// A request expired in the queue and got `TimedOut`.
    pub fn timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// A cache-feedback event was applied.
    pub fn event(&self) {
        self.events.fetch_add(1, Ordering::Relaxed);
    }

    /// A cache-feedback event was dropped by backpressure.
    pub fn event_dropped(&self) {
        self.events_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// A malformed frame or protocol-state error.
    pub fn protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// One decision batch (a single `forward_batch` window) of `size`
    /// decisions was processed.
    pub fn batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let idx = size.min(MAX_BATCH_TRACKED);
        if let Some(b) = self.batch_sizes.get(idx) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A TCP connection entered the event loop.
    pub fn conn_opened(&self) {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// A TCP connection was deregistered and its slot reclaimed.
    pub fn conn_closed(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// One cross-session pooled window ran: `sessions` sessions' decision
    /// windows shared a single batched forward.
    pub fn pool_batch(&self, sessions: usize) {
        self.pool_batches.fetch_add(1, Ordering::Relaxed);
        self.pool_sessions
            .fetch_add(sessions as u64, Ordering::Relaxed);
    }

    /// One pooled window ran through the int8 quantized datapath
    /// (`--quantize-frozen`), covering `sessions` sessions' decisions.
    pub fn quantized_window(&self, sessions: usize) {
        self.quantized_windows.fetch_add(1, Ordering::Relaxed);
        self.quantized_sessions
            .fetch_add(sessions as u64, Ordering::Relaxed);
    }

    /// A session checkpoint was written on retire.
    pub fn checkpoint_saved(&self) {
        self.checkpoints_saved.fetch_add(1, Ordering::Relaxed);
    }

    /// A session warm-started from a checkpoint at Hello.
    pub fn checkpoint_loaded(&self) {
        self.checkpoints_loaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Decisions served so far.
    pub fn decisions_total(&self) -> u64 {
        self.decisions.load(Ordering::Relaxed)
    }

    /// Sessions closed so far.
    pub fn sessions_closed_total(&self) -> u64 {
        self.sessions_closed.load(Ordering::Relaxed)
    }

    fn percentile(&self, q: f64) -> u64 {
        let total: u64 = self.latency.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        if total == 0 {
            return 0;
        }
        let mut target = (q * total as f64).ceil() as u64;
        target = target.clamp(1, total);
        let mut cum = 0u64;
        for (idx, b) in self.latency.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return lat_bucket_upper(idx);
            }
        }
        lat_bucket_upper(LAT_BUCKETS - 1)
    }

    /// A point-in-time copy of every counter, with derived percentiles.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let batches = self.batches.load(Ordering::Relaxed);
        let decisions = self.decisions.load(Ordering::Relaxed);
        let batch_size_hist: Vec<(u64, u64)> = self
            .batch_sizes
            .iter()
            .enumerate()
            .filter_map(|(size, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((size as u64, n))
            })
            .collect();
        TelemetrySnapshot {
            // `active()` never panics (dispatch falls back to scalar), so
            // this stays within the no-panic hot-path contract.
            kernel_backend: resemble_nn::simd::active().name().to_string(),
            cpu_caps: resemble_nn::simd::capabilities().summary(),
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            decisions,
            prefetches: self.prefetches.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            events_dropped: self.events_dropped.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            batches,
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            pool_batches: self.pool_batches.load(Ordering::Relaxed),
            pool_sessions: self.pool_sessions.load(Ordering::Relaxed),
            quantized_windows: self.quantized_windows.load(Ordering::Relaxed),
            quantized_sessions: self.quantized_sessions.load(Ordering::Relaxed),
            checkpoints_saved: self.checkpoints_saved.load(Ordering::Relaxed),
            checkpoints_loaded: self.checkpoints_loaded.load(Ordering::Relaxed),
            mean_batch: if batches > 0 {
                decisions as f64 / batches as f64
            } else {
                0.0
            },
            latency_us_p50: self.percentile(0.50),
            latency_us_p95: self.percentile(0.95),
            latency_us_p99: self.percentile(0.99),
            batch_size_hist,
        }
    }
}

/// A serializable point-in-time view of [`Telemetry`], one JSONL line per
/// periodic snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// SIMD kernel backend the snapshotting thread's decisions run on
    /// (`avx512`/`avx2`/`sse2`/`neon`/`scalar`), so latency and
    /// throughput numbers are attributable to an ISA.
    pub kernel_backend: String,
    /// Detected CPU SIMD capability bits (space-separated feature names,
    /// e.g. `"sse2 avx2 avx512f avx512bw avx512-vnni"`, or `"none"`) —
    /// the bits backend selection and the VNNI int8 instruction forms
    /// gate on.
    pub cpu_caps: String,
    /// Sessions accepted.
    pub sessions_opened: u64,
    /// Sessions finished.
    pub sessions_closed: u64,
    /// Decisions served.
    pub decisions: u64,
    /// Prefetch addresses issued across all decisions.
    pub prefetches: u64,
    /// Requests rejected with `Busy`.
    pub busy_rejections: u64,
    /// Requests expired with `TimedOut`.
    pub timeouts: u64,
    /// Cache-feedback events applied.
    pub events: u64,
    /// Cache-feedback events dropped by backpressure.
    pub events_dropped: u64,
    /// Malformed frames / protocol-state errors.
    pub protocol_errors: u64,
    /// Decision batches processed (one `forward_batch` window each).
    pub batches: u64,
    /// TCP connections accepted into the event loop.
    pub connections_opened: u64,
    /// TCP connections deregistered (every opened connection must be
    /// closed by drain time — the leak-freedom invariant).
    pub connections_closed: u64,
    /// Cross-session pooled windows (many sessions, one forward).
    pub pool_batches: u64,
    /// Sessions summed across all pooled windows.
    pub pool_sessions: u64,
    /// Pooled windows that ran through the int8 quantized datapath.
    pub quantized_windows: u64,
    /// Sessions summed across all quantized pooled windows.
    pub quantized_sessions: u64,
    /// Session checkpoints written on retire.
    pub checkpoints_saved: u64,
    /// Sessions warm-started from a checkpoint at Hello.
    pub checkpoints_loaded: u64,
    /// Mean decisions per batch.
    pub mean_batch: f64,
    /// Median decision latency (enqueue → reply encoded), microseconds.
    pub latency_us_p50: u64,
    /// 95th-percentile decision latency, microseconds.
    pub latency_us_p95: u64,
    /// 99th-percentile decision latency, microseconds.
    pub latency_us_p99: u64,
    /// `(batch_size, count)` pairs for every non-empty bucket; sizes above
    /// 256 share the overflow bucket.
    pub batch_size_hist: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_self_consistent() {
        let mut prev = 0;
        for us in [0u64, 1, 2, 3, 4, 5, 7, 8, 100, 1000, 65_535, 1 << 30] {
            let idx = lat_bucket(us);
            assert!(idx >= prev, "bucket index regressed at {us}");
            prev = idx;
            assert!(
                lat_bucket_lower(idx) <= us && us <= lat_bucket_upper(idx),
                "{us}us outside bucket {idx}: [{}, {}]",
                lat_bucket_lower(idx),
                lat_bucket_upper(idx)
            );
        }
        assert_eq!(lat_bucket(u64::MAX), LAT_BUCKETS - 1);
    }

    #[test]
    fn percentiles_reflect_recorded_latencies() {
        let t = Telemetry::new();
        // 90 fast decisions at ~10us, 10 slow at ~1000us.
        for _ in 0..90 {
            t.decision(10, 1);
        }
        for _ in 0..10 {
            t.decision(1000, 0);
        }
        let s = t.snapshot();
        assert_eq!(s.decisions, 100);
        assert_eq!(s.prefetches, 90);
        assert!(s.latency_us_p50 < 20, "p50={}", s.latency_us_p50);
        assert!(
            s.latency_us_p99 >= 512,
            "p99={} should land in the slow mode",
            s.latency_us_p99
        );
        assert!(s.latency_us_p95 <= s.latency_us_p99);
    }

    #[test]
    fn batch_histogram_tracks_sizes_with_overflow() {
        let t = Telemetry::new();
        t.batch(1);
        t.batch(1);
        t.batch(8);
        t.batch(10_000); // overflow bucket
        let s = t.snapshot();
        assert_eq!(s.batches, 4);
        assert!(s.batch_size_hist.contains(&(1, 2)));
        assert!(s.batch_size_hist.contains(&(8, 1)));
        assert!(s.batch_size_hist.contains(&(MAX_BATCH_TRACKED as u64, 1)));
    }

    #[test]
    fn empty_telemetry_snapshots_cleanly() {
        let s = Telemetry::new().snapshot();
        assert!(
            ["avx512", "avx2", "sse2", "neon", "scalar"].contains(&s.kernel_backend.as_str()),
            "unknown backend {:?}",
            s.kernel_backend
        );
        assert!(!s.cpu_caps.is_empty(), "cpu_caps must never be blank");
        assert_eq!(s.decisions, 0);
        assert_eq!(s.quantized_windows, 0);
        assert_eq!(s.latency_us_p99, 0);
        assert_eq!(s.mean_batch, 0.0);
        assert!(s.batch_size_hist.is_empty());
        // The snapshot serializes as a single JSON object (one JSONL line).
        let line = serde_json::to_string(&s).expect("serializes");
        assert!(!line.contains('\n'));
    }
}
