//! The server: epoll I/O threads, shard worker threads, periodic
//! telemetry snapshots, and graceful drain.
//!
//! Thread model (DESIGN.md §8): a small fixed pool of I/O threads each
//! runs a nonblocking epoll event loop ([`crate::event_loop`]); thread 0
//! owns the listener and hands accepted connections round-robin to its
//! peers through eventfd-backed mailboxes. Connection state (frame
//! reassembly buffer, session binding) lives in a per-thread slab keyed
//! by the epoll token, and is removed the moment the connection closes —
//! there is no per-connection thread and no grow-only registry to leak.
//! One worker per shard executes batched decision windows, pooling
//! same-key frozen sessions through a single shared forward.
//!
//! Shutdown is a drain, not an abort: wake every I/O thread, which stops
//! accepting, half-closes every connection (`shutdown(SHUT_RD)`), parses
//! whatever already arrived, and enqueues a final `Bye` per session; then
//! workers flush every queue — every in-flight request gets a `Decision`
//! or `TimedOut` reply before the process exits with a final snapshot.

use crate::event_loop::{io_loop, IoCtx, IoMailbox};
use crate::session::ModelBuilder;
use crate::shard::{Shard, WorkerCfg};
use crate::telemetry::{Telemetry, TelemetrySnapshot};
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port (tests/bench).
    pub addr: String,
    /// Shard (worker thread) count.
    pub shards: usize,
    /// Maximum decision requests drained per session visit — the upper
    /// bound of the microbatch window. 1 forces batch-of-1 serving.
    pub max_batch: usize,
    /// Bounded per-session queue capacity (commands). Accesses beyond it
    /// answer `Busy`; events beyond it are dropped.
    pub queue_cap: usize,
    /// Where periodic JSONL telemetry snapshots go (`None` disables).
    pub snapshot_path: Option<PathBuf>,
    /// Interval between periodic snapshots.
    pub snapshot_every: Duration,
    /// Epoll I/O thread count (thread 0 additionally owns the listener).
    pub io_threads: usize,
    /// Batch decision windows across same-key frozen sessions into one
    /// shared forward per shard visit.
    pub cross_session: bool,
    /// Row cap of one cross-session pooled window.
    pub pool_rows: usize,
    /// Directory for model checkpoints: sessions save on `Bye` and new
    /// same-key sessions warm-start from the latest file (`None`
    /// disables both).
    pub checkpoint_dir: Option<PathBuf>,
    /// Serve pooled frozen windows through the int8 quantized datapath
    /// (`--quantize-frozen`). Deterministic, but not bit-identical to the
    /// default f32 path; off by default.
    pub quantize_frozen: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            shards: 2,
            max_batch: 64,
            queue_cap: 256,
            snapshot_path: None,
            snapshot_every: Duration::from_secs(5),
            io_threads: 2,
            cross_session: true,
            pool_rows: 4096,
            checkpoint_dir: None,
            quantize_frozen: false,
        }
    }
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// aborts the threads without a drain; call `shutdown` for the graceful
/// path.
pub struct Server {
    addr: SocketAddr,
    cfg: ServeConfig,
    shutdown: Arc<AtomicBool>,
    input_closed: Arc<AtomicBool>,
    snap_stop: Arc<AtomicBool>,
    telemetry: Arc<Telemetry>,
    shards: Vec<Arc<Shard>>,
    mailboxes: Arc<Vec<IoMailbox>>,
    io_threads: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    snapshotter: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start all threads. `builder` maps a Hello's model name to
    /// a [`SessionModel`](crate::SessionModel) (see [`SessionModel::default_builder`](crate::SessionModel::default_builder)).
    pub fn start(cfg: ServeConfig, builder: ModelBuilder) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let telemetry = Arc::new(Telemetry::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let input_closed = Arc::new(AtomicBool::new(false));
        let snap_stop = Arc::new(AtomicBool::new(false));
        let n_shards = cfg.shards.max(1);
        let shards: Vec<Arc<Shard>> = (0..n_shards).map(|_| Shard::new()).collect();

        let worker_cfg = WorkerCfg {
            max_batch: cfg.max_batch.max(1),
            cross_session: cfg.cross_session,
            pool_rows: cfg.pool_rows.max(1),
            checkpoint_dir: cfg.checkpoint_dir.clone(),
            quantize_frozen: cfg.quantize_frozen,
        };
        let workers = shards
            .iter()
            .map(|shard| {
                let shard = Arc::clone(shard);
                let input_closed = Arc::clone(&input_closed);
                let telemetry = Arc::clone(&telemetry);
                let worker_cfg = worker_cfg.clone();
                std::thread::spawn(move || {
                    shard.worker_loop(&input_closed, &telemetry, &worker_cfg)
                })
            })
            .collect();

        let n_io = cfg.io_threads.max(1);
        let mailboxes: Arc<Vec<IoMailbox>> = Arc::new(
            (0..n_io)
                .map(|_| IoMailbox::new())
                .collect::<std::io::Result<Vec<_>>>()?,
        );
        let ctx = Arc::new(IoCtx {
            shards: shards.clone(),
            builder,
            telemetry: Arc::clone(&telemetry),
            queue_cap: cfg.queue_cap.max(1),
            next_session: AtomicU64::new(1),
            shutdown: Arc::clone(&shutdown),
            checkpoint_dir: cfg.checkpoint_dir.clone(),
        });
        let mut listener = Some(listener);
        let io_threads = (0..n_io)
            .map(|i| {
                let l = if i == 0 { listener.take() } else { None };
                let mailboxes = Arc::clone(&mailboxes);
                let ctx = Arc::clone(&ctx);
                std::thread::spawn(move || io_loop(i, l, mailboxes, ctx))
            })
            .collect();

        let snapshotter = cfg.snapshot_path.clone().map(|path| {
            let telemetry = Arc::clone(&telemetry);
            let stop = Arc::clone(&snap_stop);
            let every = cfg.snapshot_every;
            std::thread::spawn(move || snapshot_loop(&path, &telemetry, &stop, every))
        });

        Ok(Server {
            addr,
            cfg,
            shutdown,
            input_closed,
            snap_stop,
            telemetry,
            shards,
            mailboxes,
            io_threads,
            workers,
            snapshotter,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live telemetry.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Request shutdown from another thread (e.g. a signal handler watcher)
    /// without consuming the server. Wakes every I/O thread so the flag is
    /// observed immediately rather than at the next epoll timeout.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        for mb in self.mailboxes.iter() {
            mb.wake();
        }
    }

    /// `true` once shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Graceful drain: wake and join the I/O threads (each half-closes its
    /// connections, parses residual input, and enqueues a final `Bye` per
    /// session), flush every shard queue, stop the snapshotter, and return
    /// the final telemetry snapshot (also appended to the JSONL file when
    /// one is configured).
    pub fn shutdown(mut self) -> TelemetrySnapshot {
        self.request_shutdown();
        for h in self.io_threads.drain(..) {
            let _ = h.join();
        }
        // All I/O threads are gone: no more enqueues. Workers drain to empty.
        self.input_closed.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.notify();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.snap_stop.store(true, Ordering::Release);
        if let Some(h) = self.snapshotter.take() {
            let _ = h.join();
        }
        let snap = self.telemetry.snapshot();
        if let Some(path) = &self.cfg.snapshot_path {
            append_snapshot(path, &snap);
        }
        snap
    }
}

/// Append periodic snapshots to a JSONL file until told to stop.
fn snapshot_loop(path: &PathBuf, telemetry: &Telemetry, stop: &AtomicBool, every: Duration) {
    let mut last = Instant::now();
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(25));
        if last.elapsed() >= every {
            append_snapshot(path, &telemetry.snapshot());
            last = Instant::now();
        }
    }
}

fn append_snapshot(path: &PathBuf, snap: &TelemetrySnapshot) {
    let Ok(line) = serde_json::to_string(snap) else {
        return;
    };
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path);
    if let Ok(mut f) = file {
        let _ = writeln!(f, "{line}");
    }
}

/// Process-wide SIGINT/SIGTERM latch for the serve binaries: `install`
/// registers a minimal async-signal-safe handler (one atomic store);
/// `triggered` is polled by the binary's main loop, which then calls
/// [`Server::shutdown`] for the graceful drain. Tests drive `shutdown`
/// directly and never touch this.
pub mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIGGERED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    /// Register the handler for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        // No libc crate in the vendored workspace: declare signal(2)
        // directly. The handler only stores an atomic flag, which is
        // async-signal-safe.
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
        }
        // SAFETY: `on_signal` is a valid extern "C" fn for the whole
        // program lifetime and only stores an atomic (async-signal-safe);
        // signal(2) takes no pointers beyond the handler itself.
        // lint:allow(unsafe-undocumented): one isolated signal(2) registration — not worth widening the [[unsafe-allowed]] file set
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }

    /// `true` once a registered signal has fired.
    pub fn triggered() -> bool {
        TRIGGERED.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionModel;

    #[test]
    fn server_starts_and_drains_with_no_clients() {
        let server =
            Server::start(ServeConfig::default(), SessionModel::default_builder()).expect("starts");
        assert_ne!(server.local_addr().port(), 0);
        let snap = server.shutdown();
        assert_eq!(snap.sessions_opened, 0);
        assert_eq!(snap.decisions, 0);
    }

    #[test]
    fn final_snapshot_lands_in_jsonl() {
        let dir = std::env::temp_dir().join(format!("resemble_serve_test_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("telemetry.jsonl");
        let _ = std::fs::remove_file(&path);
        let cfg = ServeConfig {
            snapshot_path: Some(path.clone()),
            ..ServeConfig::default()
        };
        let server = Server::start(cfg, SessionModel::default_builder()).expect("starts");
        let _ = server.shutdown();
        let text = std::fs::read_to_string(&path).expect("snapshot file exists");
        let last = text.lines().last().expect("at least one line");
        let snap = serde_json::from_str(last).expect("valid JSON");
        assert_eq!(snap.get("decisions").and_then(|v| v.as_u64()), Some(0));
        let _ = std::fs::remove_file(&path);
    }
}
