//! The server: accept loop, per-connection reader threads, shard worker
//! threads, periodic telemetry snapshots, and graceful drain.
//!
//! Thread model (DESIGN.md §8): one acceptor polls a non-blocking
//! listener; each connection gets a blocking reader thread that parses
//! frames and enqueues commands onto the session's shard; one worker per
//! shard executes batched decision windows. Shutdown is a drain, not an
//! abort: stop accepting, unblock every reader (`shutdown(SHUT_RD)` on
//! the sockets), let readers enqueue a final `Bye` per session, then let
//! workers flush every queue — every in-flight request gets a `Decision`
//! or `TimedOut` reply before the process exits with a final snapshot.

use crate::batcher::{AccessReq, SessionCmd};
use crate::protocol::{read_frame, Reply, Request};
use crate::session::ModelBuilder;
use crate::shard::{Conn, Enqueue, Shard};
use crate::telemetry::{Telemetry, TelemetrySnapshot};
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port (tests/bench).
    pub addr: String,
    /// Shard (worker thread) count.
    pub shards: usize,
    /// Maximum decision requests drained per session visit — the upper
    /// bound of the microbatch window. 1 forces batch-of-1 serving.
    pub max_batch: usize,
    /// Bounded per-session queue capacity (commands). Accesses beyond it
    /// answer `Busy`; events beyond it are dropped.
    pub queue_cap: usize,
    /// Where periodic JSONL telemetry snapshots go (`None` disables).
    pub snapshot_path: Option<PathBuf>,
    /// Interval between periodic snapshots.
    pub snapshot_every: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            shards: 2,
            max_batch: 64,
            queue_cap: 256,
            snapshot_path: None,
            snapshot_every: Duration::from_secs(5),
        }
    }
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// aborts the threads without a drain; call `shutdown` for the graceful
/// path.
pub struct Server {
    addr: SocketAddr,
    cfg: ServeConfig,
    shutdown: Arc<AtomicBool>,
    input_closed: Arc<AtomicBool>,
    snap_stop: Arc<AtomicBool>,
    telemetry: Arc<Telemetry>,
    shards: Vec<Arc<Shard>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    snapshotter: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start all threads. `builder` maps a Hello's model name to
    /// a [`SessionModel`](crate::SessionModel) (see [`SessionModel::default_builder`](crate::SessionModel::default_builder)).
    pub fn start(cfg: ServeConfig, builder: ModelBuilder) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let telemetry = Arc::new(Telemetry::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let input_closed = Arc::new(AtomicBool::new(false));
        let snap_stop = Arc::new(AtomicBool::new(false));
        let n_shards = cfg.shards.max(1);
        let shards: Vec<Arc<Shard>> = (0..n_shards).map(|_| Shard::new()).collect();

        let workers = shards
            .iter()
            .map(|shard| {
                let shard = Arc::clone(shard);
                let input_closed = Arc::clone(&input_closed);
                let telemetry = Arc::clone(&telemetry);
                let max_batch = cfg.max_batch.max(1);
                std::thread::spawn(move || shard.worker_loop(&input_closed, &telemetry, max_batch))
            })
            .collect();

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let telemetry = Arc::clone(&telemetry);
            let shards = shards.clone();
            let queue_cap = cfg.queue_cap.max(1);
            std::thread::spawn(move || {
                accept_loop(listener, shutdown, shards, builder, telemetry, queue_cap);
            })
        };

        let snapshotter = cfg.snapshot_path.clone().map(|path| {
            let telemetry = Arc::clone(&telemetry);
            let stop = Arc::clone(&snap_stop);
            let every = cfg.snapshot_every;
            std::thread::spawn(move || snapshot_loop(&path, &telemetry, &stop, every))
        });

        Ok(Server {
            addr,
            cfg,
            shutdown,
            input_closed,
            snap_stop,
            telemetry,
            shards,
            acceptor: Some(acceptor),
            workers,
            snapshotter,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live telemetry.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Request shutdown from another thread (e.g. a signal handler watcher)
    /// without consuming the server.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// `true` once shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Graceful drain: stop accepting, unblock and join the readers (each
    /// enqueues a final `Bye` for its session), flush every shard queue,
    /// stop the snapshotter, and return the final telemetry snapshot
    /// (also appended to the JSONL file when one is configured).
    pub fn shutdown(mut self) -> TelemetrySnapshot {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // All readers are gone: no more enqueues. Workers drain to empty.
        self.input_closed.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.notify();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.snap_stop.store(true, Ordering::Release);
        if let Some(h) = self.snapshotter.take() {
            let _ = h.join();
        }
        let snap = self.telemetry.snapshot();
        if let Some(path) = &self.cfg.snapshot_path {
            append_snapshot(path, &snap);
        }
        snap
    }
}

/// Accept connections until shutdown; then unblock every reader and join
/// them so no enqueue can happen after the acceptor returns.
fn accept_loop(
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    shards: Vec<Arc<Shard>>,
    builder: ModelBuilder,
    telemetry: Arc<Telemetry>,
    queue_cap: usize,
) {
    let next_session = Arc::new(AtomicU64::new(1));
    let live_streams: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    live_streams
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(clone);
                }
                let shards = shards.clone();
                let builder = Arc::clone(&builder);
                let telemetry = Arc::clone(&telemetry);
                let next_session = Arc::clone(&next_session);
                readers.push(std::thread::spawn(move || {
                    reader_loop(
                        stream,
                        &shards,
                        &builder,
                        &telemetry,
                        &next_session,
                        queue_cap,
                    );
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    // Unblock readers stuck in read(2): half-close the read side. Their
    // next read sees EOF, they enqueue a final Bye, and exit.
    for s in live_streams
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
    {
        let _ = s.shutdown(Shutdown::Read);
    }
    for h in readers {
        let _ = h.join();
    }
}

/// One connection: Hello handshake, then frames → session commands until
/// Bye/EOF/error. Always enqueues a final `Bye` so the worker flushes and
/// retires the session.
fn reader_loop(
    stream: TcpStream,
    shards: &[Arc<Shard>],
    builder: &ModelBuilder,
    telemetry: &Telemetry,
    next_session: &AtomicU64,
    queue_cap: usize,
) {
    let conn = match stream.try_clone() {
        Ok(w) => Conn::new(w),
        Err(_) => return,
    };
    let mut r = BufReader::new(stream);
    let mut payload: Vec<u8> = Vec::new();
    let mut reply_buf: Vec<u8> = Vec::new();

    // Handshake: the first frame must be Hello.
    let (session_id, shard) = match read_frame(&mut r, &mut payload) {
        Ok(Some(ty)) => match Request::decode(ty, &payload) {
            Ok(Request::Hello { model, seed, fast }) => match builder(&model, seed, fast) {
                Ok(m) => {
                    let id = next_session.fetch_add(1, Ordering::Relaxed);
                    let shard =
                        match shards.get(usize::try_from(id % shards.len() as u64).unwrap_or(0)) {
                            Some(s) => s,
                            None => return,
                        };
                    shard.register(id, m, Arc::clone(&conn));
                    telemetry.session_opened();
                    send_reply(&conn, &mut reply_buf, &Reply::Accepted { session_id: id });
                    (id, shard)
                }
                Err(message) => {
                    telemetry.protocol_error();
                    send_reply(&conn, &mut reply_buf, &Reply::Error { message });
                    return;
                }
            },
            Ok(_) | Err(_) => {
                telemetry.protocol_error();
                send_reply(
                    &conn,
                    &mut reply_buf,
                    &Reply::Error {
                        message: "expected Hello".to_string(),
                    },
                );
                return;
            }
        },
        _ => return,
    };

    loop {
        match read_frame(&mut r, &mut payload) {
            Ok(Some(ty)) => match Request::decode(ty, &payload) {
                Ok(Request::Access {
                    req_id,
                    deadline_us,
                    access,
                    hit,
                }) => {
                    let enqueued = Instant::now();
                    let deadline = (deadline_us > 0)
                        .then(|| enqueued + Duration::from_micros(u64::from(deadline_us)));
                    let cmd = SessionCmd::Access(AccessReq {
                        req_id,
                        access,
                        hit,
                        enqueued,
                        deadline,
                    });
                    match shard.enqueue(session_id, cmd, queue_cap) {
                        Enqueue::Busy => {
                            telemetry.busy();
                            send_reply(&conn, &mut reply_buf, &Reply::Busy { req_id });
                        }
                        Enqueue::SessionGone => break,
                        _ => {}
                    }
                }
                Ok(Request::Event { kind, addr }) => {
                    match shard.enqueue(session_id, SessionCmd::Event { kind, addr }, queue_cap) {
                        Enqueue::Dropped => telemetry.event_dropped(),
                        Enqueue::SessionGone => break,
                        _ => {}
                    }
                }
                Ok(Request::Bye) => {
                    let _ = shard.enqueue(session_id, SessionCmd::Bye, queue_cap);
                    return; // Bye already enqueued: worker will flush + Goodbye.
                }
                Ok(Request::Hello { .. }) | Err(_) => {
                    telemetry.protocol_error();
                    send_reply(
                        &conn,
                        &mut reply_buf,
                        &Reply::Error {
                            message: "unexpected frame".to_string(),
                        },
                    );
                    break;
                }
            },
            Ok(None) => break, // clean EOF (client closed, or drain half-closed us)
            Err(_) => {
                telemetry.protocol_error();
                break;
            }
        }
    }
    // Connection ended without an explicit Bye: flush and retire anyway.
    let _ = shard.enqueue(session_id, SessionCmd::Bye, queue_cap);
}

fn send_reply(conn: &Conn, buf: &mut Vec<u8>, reply: &Reply) {
    buf.clear();
    reply.encode_into(buf);
    let _ = conn.send(buf);
}

/// Append periodic snapshots to a JSONL file until told to stop.
fn snapshot_loop(path: &PathBuf, telemetry: &Telemetry, stop: &AtomicBool, every: Duration) {
    let mut last = Instant::now();
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(25));
        if last.elapsed() >= every {
            append_snapshot(path, &telemetry.snapshot());
            last = Instant::now();
        }
    }
}

fn append_snapshot(path: &PathBuf, snap: &TelemetrySnapshot) {
    let Ok(line) = serde_json::to_string(snap) else {
        return;
    };
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path);
    if let Ok(mut f) = file {
        let _ = writeln!(f, "{line}");
    }
}

/// Process-wide SIGINT/SIGTERM latch for the serve binaries: `install`
/// registers a minimal async-signal-safe handler (one atomic store);
/// `triggered` is polled by the binary's main loop, which then calls
/// [`Server::shutdown`] for the graceful drain. Tests drive `shutdown`
/// directly and never touch this.
pub mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIGGERED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    /// Register the handler for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        // No libc crate in the vendored workspace: declare signal(2)
        // directly. The handler only stores an atomic flag, which is
        // async-signal-safe.
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
        }
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }

    /// `true` once a registered signal has fired.
    pub fn triggered() -> bool {
        TRIGGERED.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionModel;

    #[test]
    fn server_starts_and_drains_with_no_clients() {
        let server =
            Server::start(ServeConfig::default(), SessionModel::default_builder()).expect("starts");
        assert_ne!(server.local_addr().port(), 0);
        let snap = server.shutdown();
        assert_eq!(snap.sessions_opened, 0);
        assert_eq!(snap.decisions, 0);
    }

    #[test]
    fn final_snapshot_lands_in_jsonl() {
        let dir = std::env::temp_dir().join(format!("resemble_serve_test_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("telemetry.jsonl");
        let _ = std::fs::remove_file(&path);
        let cfg = ServeConfig {
            snapshot_path: Some(path.clone()),
            ..ServeConfig::default()
        };
        let server = Server::start(cfg, SessionModel::default_builder()).expect("starts");
        let _ = server.shutdown();
        let text = std::fs::read_to_string(&path).expect("snapshot file exists");
        let last = text.lines().last().expect("at least one line");
        let snap = serde_json::from_str(last).expect("valid JSON");
        assert_eq!(snap.get("decisions").and_then(|v| v.as_u64()), Some(0));
        let _ = std::fs::remove_file(&path);
    }
}
