//! # resemble-serve
//!
//! An online, batched prefetch-decision service over the ReSemble
//! ensemble — the serving layer for the ROADMAP's production north star.
//! Clients stream memory accesses over a length-prefixed binary protocol
//! on plain TCP ([`protocol`]); a small pool of epoll I/O threads parses
//! frames from nonblocking sockets (no thread per connection, and
//! per-connection state is freed the moment the socket closes); each
//! connection is one session with its own ensemble/prefetcher state
//! ([`session`]), pinned to a sharded worker thread ([`shard`]). Workers
//! microbatch whatever a session has queued — up to `max_batch` — into
//! single `Mlp::forward_batch` decision windows ([`batcher`],
//! `ResembleMlp::on_access_window`), and additionally pool frozen
//! same-`(model, seed, fast)` sessions into one shared forward per visit
//! ([`pool`]), which keeps the PR-3 GEMM kernels on the serving hot path
//! while staying **bit-identical** to an offline sequential run of the
//! same stream, no matter how sessions interleave. Session models can
//! checkpoint to disk on `Bye` and warm-start the next same-key Hello
//! (`ServeConfig::checkpoint_dir`).
//!
//! The production envelope: bounded per-session queues with explicit
//! `Busy` backpressure, per-request deadlines answered with `TimedOut`,
//! graceful drain on shutdown (every queued request gets a reply before
//! exit), and lock-free latency/batch-size telemetry snapshotted as JSONL
//! ([`telemetry`]).
//!
//! ```no_run
//! use resemble_serve::{ServeClient, ServeConfig, Server, SessionModel};
//! use resemble_trace::MemAccess;
//!
//! let server = Server::start(ServeConfig::default(), SessionModel::default_builder())?;
//! let mut client = ServeClient::connect(server.local_addr())?;
//! client.hello("resemble", 42, true)?;
//! let reply = client.request_decision(0, 0, MemAccess::load(0, 0x400, 0x1000), false)?;
//! println!("{reply:?}");
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod batcher;
pub mod client;
mod event_loop;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod session;
pub mod shard;
pub mod telemetry;

pub use client::ServeClient;
pub use protocol::{EventKind, Reply, Request};
pub use server::{signal, ServeConfig, Server};
pub use session::{offline_decisions, ModelBuilder, SessionModel};
pub use telemetry::{Telemetry, TelemetrySnapshot};
