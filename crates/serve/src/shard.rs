//! Sharded session workers: per-session bounded queues, round-robin
//! scheduling, and the decision loop that executes drain plans.
//!
//! Sessions are assigned to a shard by `session_id % n_shards`; each
//! shard has exactly one worker thread, which is what serializes all
//! model access for a session (replies go out in stream order, no model
//! locking). Reader threads enqueue commands under the shard lock and
//! wake the worker; the worker drains up to `max_batch` requests per
//! session visit, releases the lock, runs the batched decision windows,
//! and writes all replies of the visit with a single socket write. This
//! file is on the decision hot path (`panic-in-hot-path` scope): no
//! panics, no literal indexing; poisoned locks are re-entered because a
//! panicked peer thread must not take the server down.

use crate::batcher::{drain_session, DrainPlan, PlanOp, SessionCmd};
use crate::protocol::{encode_decision_into, Reply};
use crate::session::SessionModel;
use crate::telemetry::Telemetry;
use resemble_trace::MemAccess;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// The write half of a client connection, shared between the reader
/// thread (Accepted/Busy/Error replies) and the shard worker (Decision/
/// TimedOut/Goodbye replies). Each `send` is one `write(2)` of a batch of
/// pre-encoded frames, so reply syscalls amortize across a whole drain.
pub struct Conn {
    stream: Mutex<TcpStream>,
}

impl Conn {
    /// Wrap a connected stream.
    pub fn new(stream: TcpStream) -> Arc<Conn> {
        Arc::new(Conn {
            stream: Mutex::new(stream),
        })
    }

    /// Write a batch of pre-encoded frames atomically with respect to
    /// other senders on this connection.
    pub fn send(&self, bytes: &[u8]) -> io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        let mut g = self.stream.lock().unwrap_or_else(PoisonError::into_inner);
        g.write_all(bytes)
    }
}

/// Outcome of enqueueing a command onto a session's bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// Queued; the worker was notified.
    Accepted,
    /// Queue full: the request must be answered with `Busy`.
    Busy,
    /// Queue full: the event was dropped (events carry no reply).
    Dropped,
    /// No such session (already said goodbye).
    SessionGone,
}

struct Slot {
    id: u64,
    /// `None` while the worker has the model checked out.
    model: Option<SessionModel>,
    queue: VecDeque<SessionCmd>,
    conn: Arc<Conn>,
    decisions: u64,
}

struct Inner {
    slots: Vec<Slot>,
    cursor: usize,
}

/// One shard: its sessions, their queues, and the condvar its worker
/// sleeps on.
pub struct Shard {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Shard {
    /// An empty shard.
    pub fn new() -> Arc<Shard> {
        Arc::new(Shard {
            inner: Mutex::new(Inner {
                slots: Vec::new(),
                cursor: 0,
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Add a session to this shard.
    pub fn register(&self, id: u64, model: SessionModel, conn: Arc<Conn>) {
        let mut g = self.lock();
        g.slots.push(Slot {
            id,
            model: Some(model),
            queue: VecDeque::new(),
            conn,
            decisions: 0,
        });
        drop(g);
        self.cv.notify_one();
    }

    /// Enqueue a command for a session, enforcing the bounded queue: at
    /// `cap` queued commands, accesses bounce with [`Enqueue::Busy`] and
    /// events are dropped; `Bye` is always accepted so a session can
    /// always terminate.
    pub fn enqueue(&self, id: u64, cmd: SessionCmd, cap: usize) -> Enqueue {
        let mut g = self.lock();
        let Some(slot) = g.slots.iter_mut().find(|s| s.id == id) else {
            return Enqueue::SessionGone;
        };
        let full = slot.queue.len() >= cap.max(1);
        let verdict = match cmd {
            SessionCmd::Access(_) if full => Enqueue::Busy,
            SessionCmd::Event { .. } if full => Enqueue::Dropped,
            cmd => {
                slot.queue.push_back(cmd);
                Enqueue::Accepted
            }
        };
        drop(g);
        if verdict == Enqueue::Accepted {
            self.cv.notify_one();
        }
        verdict
    }

    /// Wake the worker (used during shutdown to re-check exit conditions).
    pub fn notify(&self) {
        self.cv.notify_all();
    }

    /// The shard worker loop: runs until `input_closed` is set *and* every
    /// queue is drained. Readers guarantee a `Bye` is enqueued for every
    /// session before `input_closed`, so by exit all sessions have been
    /// flushed and answered.
    pub fn worker_loop(
        self: &Arc<Self>,
        input_closed: &AtomicBool,
        telemetry: &Telemetry,
        max_batch: usize,
    ) {
        let mut plan = DrainPlan::new();
        let mut acc_buf: Vec<(MemAccess, bool)> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        let mut out_buf: Vec<u8> = Vec::new();
        loop {
            // Pick the next session with queued work (round-robin) and
            // drain its queue under the lock; all model work and socket
            // I/O happen with the lock released.
            let mut g = self.lock();
            let n = g.slots.len();
            let mut picked = None;
            for off in 0..n {
                let i = (g.cursor + off) % n;
                let has_work = g
                    .slots
                    .get(i)
                    .is_some_and(|s| s.model.is_some() && !s.queue.is_empty());
                if has_work {
                    picked = Some(i);
                    break;
                }
            }
            let Some(i) = picked else {
                let idle = g.slots.iter().all(|s| s.queue.is_empty());
                if idle && input_closed.load(Ordering::Acquire) {
                    return;
                }
                let (g, _) = match self.cv.wait_timeout(g, Duration::from_millis(20)) {
                    Ok(pair) => pair,
                    Err(poisoned) => poisoned.into_inner(),
                };
                drop(g);
                continue;
            };
            g.cursor = (i + 1) % n;
            let Some(slot) = g.slots.get_mut(i) else {
                continue;
            };
            let Some(mut model) = slot.model.take() else {
                continue;
            };
            drain_session(&mut slot.queue, max_batch, Instant::now(), &mut plan);
            let id = slot.id;
            let conn = Arc::clone(&slot.conn);
            let prior = slot.decisions;
            drop(g);

            // Execute the plan: runs become batched decision windows,
            // events apply in stream order, expired requests answer
            // TimedOut. Replies accumulate into one buffer.
            out_buf.clear();
            let mut served = 0u64;
            for op in &plan.ops {
                match *op {
                    PlanOp::Event { kind, addr } => {
                        model.on_event(kind, addr);
                        telemetry.event();
                    }
                    PlanOp::Run { start, len } => {
                        let reqs = plan.run.get(start..start + len).unwrap_or(&[]);
                        acc_buf.clear();
                        acc_buf.extend(reqs.iter().map(|r| (r.access, r.hit)));
                        counts.clear();
                        model.on_run(&acc_buf, |k, issued| {
                            if let Some(r) = reqs.get(k) {
                                encode_decision_into(&mut out_buf, r.req_id, issued);
                            }
                            counts.push(issued.len());
                        });
                        let done = Instant::now();
                        for (r, c) in reqs.iter().zip(counts.iter()) {
                            let us = done.saturating_duration_since(r.enqueued).as_micros();
                            telemetry.decision(u64::try_from(us).unwrap_or(u64::MAX), *c);
                        }
                        telemetry.batch(reqs.len());
                        served += reqs.len() as u64;
                    }
                }
            }
            for r in &plan.timed_out {
                Reply::TimedOut { req_id: r.req_id }.encode_into(&mut out_buf);
                telemetry.timeout();
            }
            if plan.saw_bye {
                Reply::Goodbye {
                    decisions: prior + served,
                }
                .encode_into(&mut out_buf);
            }
            // One socket write for the whole visit; a vanished client is
            // the client's problem, the session still drains.
            let _ = conn.send(&out_buf);

            // Return the model (or retire the session on Bye).
            let mut g = self.lock();
            let at = if g.slots.get(i).is_some_and(|s| s.id == id) {
                Some(i)
            } else {
                g.slots.iter().position(|s| s.id == id)
            };
            if let Some(at) = at {
                if plan.saw_bye {
                    g.slots.swap_remove(at);
                    telemetry.session_closed();
                } else if let Some(slot) = g.slots.get_mut(at) {
                    slot.model = Some(model);
                    slot.decisions = prior + served;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::AccessReq;
    use std::net::{TcpListener, TcpStream};

    fn loopback_conn() -> (Arc<Conn>, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = l.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = l.accept().expect("accept");
        (Conn::new(server_side), client)
    }

    fn access(id: u32) -> SessionCmd {
        SessionCmd::Access(AccessReq {
            req_id: id,
            access: MemAccess::load(u64::from(id), 0x400, 0x2000 + u64::from(id) * 64),
            hit: false,
            enqueued: Instant::now(),
            deadline: None,
        })
    }

    #[test]
    fn bounded_queue_bounces_accesses_and_drops_events() {
        let shard = Shard::new();
        let (conn, _client) = loopback_conn();
        let model = SessionModel::build("stride", 1, true).expect("builds");
        shard.register(9, model, conn);
        for i in 0..4 {
            assert_eq!(shard.enqueue(9, access(i), 4), Enqueue::Accepted);
        }
        assert_eq!(shard.enqueue(9, access(99), 4), Enqueue::Busy);
        assert_eq!(
            shard.enqueue(
                9,
                SessionCmd::Event {
                    kind: crate::protocol::EventKind::DemandFill,
                    addr: 0x40
                },
                4
            ),
            Enqueue::Dropped
        );
        // Bye is always accepted so the session can terminate.
        assert_eq!(shard.enqueue(9, SessionCmd::Bye, 4), Enqueue::Accepted);
        assert_eq!(shard.enqueue(77, access(0), 4), Enqueue::SessionGone);
    }

    #[test]
    fn worker_drains_to_exit_after_input_closed() {
        let shard = Shard::new();
        let (conn, client) = loopback_conn();
        let model = SessionModel::build("stride", 2, true).expect("builds");
        shard.register(1, model, conn);
        for i in 0..10 {
            assert_eq!(shard.enqueue(1, access(i), 64), Enqueue::Accepted);
        }
        assert_eq!(shard.enqueue(1, SessionCmd::Bye, 64), Enqueue::Accepted);
        let telemetry = Telemetry::new();
        let input_closed = AtomicBool::new(true);
        // Runs on this thread: must terminate once the queue is flushed.
        shard.worker_loop(&input_closed, &telemetry, 4);
        let s = telemetry.snapshot();
        assert_eq!(s.decisions, 10);
        assert_eq!(s.sessions_closed, 1);
        assert!(s.batches >= 3, "max_batch=4 over 10 requests");
        drop(client);
    }
}
