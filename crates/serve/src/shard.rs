//! Sharded session workers: slab-allocated sessions, a readiness queue,
//! cross-session pooled decision windows, and checkpoint-on-retire.
//!
//! Sessions are assigned to a shard by `session_id % n_shards`; each
//! shard has exactly one worker thread, which is what serializes all
//! model access for a session (replies go out in stream order, no model
//! locking). Sessions live in a slab (`Vec<Option<Slot>>` plus a free
//! list) addressed by slot index — enqueues are O(1) instead of a linear
//! id scan, and retired slots are recycled immediately. A readiness
//! queue replaces the round-robin cursor: a session is queued exactly
//! when it has commands pending, so the worker never scans idle slots.
//!
//! A worker visit drains one ready session, and — when that session is
//! *pool-eligible* (frozen MLP) and cross-session batching is on — steals
//! every other ready session with the same [`SessionKey`] in the same
//! pass. All their decision windows run phase A (`window_prepare`)
//! per-session, then share **one** batched forward through the
//! [`WeightPool`]'s copy of their common frozen weights, then commit
//! phase C per-session. Because frozen same-key sessions have
//! bit-identical never-changing weights and the batch kernels preserve
//! per-row accumulation order, pooled decisions are bit-identical to
//! serving each session alone. Sessions whose plans interleave events,
//! and all non-frozen sessions, take the classic per-session path in the
//! same visit.
//!
//! On a `Bye` the worker flushes the queue, answers `Goodbye`, optionally
//! checkpoints the model (warm restart for the next same-key Hello), and
//! frees the slot. This file is on the decision hot path
//! (`panic-in-hot-path` scope): no panics, no literal indexing; poisoned
//! locks are re-entered because a panicked peer thread must not take the
//! server down.

use crate::batcher::{drain_session, DrainPlan, PlanOp, SessionCmd};
use crate::pool::{SessionKey, WeightPool};
use crate::protocol::{encode_decision_into, Reply};
use crate::session::{save_checkpoint_file, SessionModel};
use crate::telemetry::Telemetry;
use resemble_nn::Matrix;
use resemble_trace::MemAccess;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Consecutive `WouldBlock` stalls (at ~200µs each) tolerated on one
/// `send` before the client is declared unresponsive (~5 s).
const MAX_SEND_STALLS: u32 = 25_000;

/// The write half of a client connection, shared between the event-loop
/// thread (Accepted/Busy/Error replies) and the shard worker (Decision/
/// TimedOut/Goodbye replies). Each `send` is one logical write of a batch
/// of pre-encoded frames, so reply syscalls amortize across a whole
/// drain. The underlying fd is a dup of the event loop's nonblocking
/// socket, so short writes and `WouldBlock` are retried here.
pub struct Conn {
    stream: Mutex<TcpStream>,
}

impl Conn {
    /// Wrap a connected stream.
    pub fn new(stream: TcpStream) -> Arc<Conn> {
        Arc::new(Conn {
            stream: Mutex::new(stream),
        })
    }

    /// Write a batch of pre-encoded frames atomically with respect to
    /// other senders on this connection. Blocks (bounded) on a client
    /// that has stopped reading; a client gone longer than ~5 s of
    /// backpressure gets `TimedOut` and its session drains without it.
    pub fn send(&self, bytes: &[u8]) -> io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        let mut g = self.stream.lock().unwrap_or_else(PoisonError::into_inner);
        let mut sent = 0usize;
        let mut stalls = 0u32;
        while sent < bytes.len() {
            match g.write(bytes.get(sent..).unwrap_or(&[])) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "connection write returned 0",
                    ))
                }
                Ok(n) => {
                    sent += n;
                    stalls = 0;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    stalls += 1;
                    if stalls > MAX_SEND_STALLS {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "client not reading replies",
                        ));
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// Outcome of enqueueing a command onto a session's bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// Queued; the worker was notified.
    Accepted,
    /// Queue full: the request must be answered with `Busy`.
    Busy,
    /// Queue full: the event was dropped (events carry no reply).
    Dropped,
    /// No such session (already said goodbye, or the slot was recycled).
    SessionGone,
}

/// Worker tuning, shared by every shard worker of a server.
#[derive(Debug, Clone)]
pub struct WorkerCfg {
    /// Maximum decision requests drained per session per visit.
    pub max_batch: usize,
    /// Batch decision windows across same-key frozen sessions.
    pub cross_session: bool,
    /// Row cap of one cross-session pooled window.
    pub pool_rows: usize,
    /// Where to checkpoint MLP sessions on retire (`None` disables).
    pub checkpoint_dir: Option<PathBuf>,
    /// Run pooled frozen windows through the int8 quantized datapath
    /// (`--quantize-frozen`). Off by default: quantized decisions are
    /// deterministic but not bit-identical to f32.
    pub quantize_frozen: bool,
}

impl Default for WorkerCfg {
    fn default() -> Self {
        Self {
            max_batch: 64,
            cross_session: true,
            pool_rows: 4096,
            checkpoint_dir: None,
            quantize_frozen: false,
        }
    }
}

struct Slot {
    id: u64,
    /// `None` while the worker has the model checked out.
    model: Option<SessionModel>,
    queue: VecDeque<SessionCmd>,
    conn: Arc<Conn>,
    decisions: u64,
    /// `true` while this slot index sits in the readiness queue.
    in_ready: bool,
    pool_eligible: bool,
    key: SessionKey,
}

struct Inner {
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    /// Slot indices with pending commands, in arrival order. Invariant:
    /// at worker-pick time, every slot with a non-empty queue is here.
    ready: VecDeque<usize>,
}

/// One shard: its session slab, the readiness queue, and the condvar its
/// worker sleeps on.
pub struct Shard {
    inner: Mutex<Inner>,
    cv: Condvar,
}

/// A session checked out of its slot for one worker visit.
struct VisitEntry {
    slot: usize,
    id: u64,
    conn: Arc<Conn>,
    model: SessionModel,
    prior: u64,
    plan: DrainPlan,
    /// This entry's run joins the cross-session pooled window.
    pooled: bool,
    /// First row of this entry's run inside the pooled state matrix.
    row0: usize,
    served: u64,
    /// Set when retiring with checkpoints enabled.
    ckpt_key: Option<SessionKey>,
}

/// A plan can join a pooled window iff it is a single uninterrupted run
/// (events force the classic in-order path; timeouts and Bye are fine).
fn plan_poolable(plan: &DrainPlan) -> bool {
    plan.ops.len() <= 1 && plan.ops.iter().all(|op| matches!(op, PlanOp::Run { .. }))
}

/// Take a slot's model and drain its queue into a fresh plan, producing
/// the visit entry. `None` if the slot is gone or already checked out.
fn checkout(
    g: &mut Inner,
    idx: usize,
    now: Instant,
    cfg: &WorkerCfg,
    spare: &mut Vec<DrainPlan>,
) -> Option<VisitEntry> {
    let slot = g.slots.get_mut(idx).and_then(|s| s.as_mut())?;
    let model = slot.model.take()?;
    let mut plan = spare.pop().unwrap_or_default();
    drain_session(&mut slot.queue, cfg.max_batch.max(1), now, &mut plan);
    let pooled = slot.pool_eligible && plan_poolable(&plan);
    let ckpt_key = (plan.saw_bye && cfg.checkpoint_dir.is_some()).then(|| slot.key.clone());
    Some(VisitEntry {
        slot: idx,
        id: slot.id,
        conn: Arc::clone(&slot.conn),
        model,
        prior: slot.decisions,
        plan,
        pooled,
        row0: 0,
        served: 0,
        ckpt_key,
    })
}

impl Shard {
    /// An empty shard.
    pub fn new() -> Arc<Shard> {
        Arc::new(Shard {
            inner: Mutex::new(Inner {
                slots: Vec::new(),
                free: Vec::new(),
                ready: VecDeque::new(),
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Add a session to this shard, returning its slot index — the handle
    /// all subsequent [`Shard::enqueue`] calls use (together with `id`,
    /// which guards against a recycled slot).
    pub fn register(
        &self,
        id: u64,
        model: SessionModel,
        conn: Arc<Conn>,
        key: SessionKey,
    ) -> usize {
        let pool_eligible = model.pool_eligible();
        let slot = Slot {
            id,
            model: Some(model),
            queue: VecDeque::new(),
            conn,
            decisions: 0,
            in_ready: false,
            pool_eligible,
            key,
        };
        let mut g = self.lock();
        match g.free.pop() {
            Some(i) => {
                if let Some(s) = g.slots.get_mut(i) {
                    *s = Some(slot);
                }
                i
            }
            None => {
                g.slots.push(Some(slot));
                g.slots.len() - 1
            }
        }
    }

    /// Enqueue a command for a session, enforcing the bounded queue: at
    /// `cap` queued commands, accesses bounce with [`Enqueue::Busy`] and
    /// events are dropped. `Bye` always lands even on a full queue — a
    /// bounced Bye would leak the slot (and its model) forever.
    pub fn enqueue(&self, slot: usize, id: u64, cmd: SessionCmd, cap: usize) -> Enqueue {
        let mut g = self.lock();
        let Some(s) = g.slots.get_mut(slot).and_then(|s| s.as_mut()) else {
            return Enqueue::SessionGone;
        };
        if s.id != id {
            return Enqueue::SessionGone;
        }
        let full = s.queue.len() >= cap.max(1);
        let mut mark_ready = false;
        let verdict = match cmd {
            SessionCmd::Access(_) if full => Enqueue::Busy,
            SessionCmd::Event { .. } if full => Enqueue::Dropped,
            cmd => {
                s.queue.push_back(cmd);
                if !s.in_ready {
                    s.in_ready = true;
                    mark_ready = true;
                }
                Enqueue::Accepted
            }
        };
        if mark_ready {
            g.ready.push_back(slot);
        }
        drop(g);
        if verdict == Enqueue::Accepted {
            self.cv.notify_one();
        }
        verdict
    }

    /// Wake the worker (used during shutdown to re-check exit conditions).
    pub fn notify(&self) {
        self.cv.notify_all();
    }

    /// Pop the next ready slot that still exists and has pending work.
    fn pop_ready(g: &mut Inner) -> Option<usize> {
        loop {
            let i = g.ready.pop_front()?;
            let Some(slot) = g.slots.get_mut(i).and_then(|s| s.as_mut()) else {
                continue; // retired while queued
            };
            slot.in_ready = false;
            if slot.model.is_none() || slot.queue.is_empty() {
                continue;
            }
            return Some(i);
        }
    }

    /// Steal every other ready session with `key` into the visit (up to
    /// `pool_rows` pooled rows), preserving the readiness order of the
    /// sessions left behind.
    fn gather_pooled(
        g: &mut Inner,
        key: &SessionKey,
        now: Instant,
        cfg: &WorkerCfg,
        spare: &mut Vec<DrainPlan>,
        entries: &mut Vec<VisitEntry>,
        keep: &mut VecDeque<usize>,
    ) {
        let cap_rows = cfg.pool_rows.max(cfg.max_batch.max(1));
        let mut rows: usize = entries.iter().map(|e| e.plan.run.len()).sum();
        keep.clear();
        while let Some(i) = g.ready.pop_front() {
            if rows >= cap_rows {
                keep.push_back(i);
                continue;
            }
            let Some(slot) = g.slots.get_mut(i).and_then(|s| s.as_mut()) else {
                continue; // retired: falls out of the readiness queue
            };
            let steal = slot.pool_eligible
                && slot.key == *key
                && slot.model.is_some()
                && !slot.queue.is_empty();
            if !steal {
                keep.push_back(i);
                continue;
            }
            slot.in_ready = false;
            if let Some(e) = checkout(g, i, now, cfg, spare) {
                if e.pooled {
                    rows += e.plan.run.len();
                }
                entries.push(e);
            }
        }
        std::mem::swap(&mut g.ready, keep);
    }

    /// The shard worker loop: runs until `input_closed` is set *and* the
    /// readiness queue is drained. The event loop guarantees a `Bye` is
    /// enqueued for every session before `input_closed`, so by exit all
    /// sessions have been flushed, answered, and their slots freed.
    pub fn worker_loop(
        self: &Arc<Self>,
        input_closed: &AtomicBool,
        telemetry: &Telemetry,
        cfg: &WorkerCfg,
    ) {
        let mut pool = WeightPool::new(8).quantized(cfg.quantize_frozen);
        let mut entries: Vec<VisitEntry> = Vec::new();
        let mut spare_plans: Vec<DrainPlan> = Vec::new();
        let mut keep: VecDeque<usize> = VecDeque::new();
        let mut acc_buf: Vec<(MemAccess, bool)> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        let mut out_buf: Vec<u8> = Vec::new();
        let mut states = Matrix::default();
        let mut q = Matrix::default();
        let mut q_own = Matrix::default();
        loop {
            // Pick and check out this visit's sessions under the lock;
            // all model work and socket I/O happen with it released.
            let now = Instant::now();
            let mut g = self.lock();
            let Some(first_idx) = Self::pop_ready(&mut g) else {
                if input_closed.load(Ordering::Acquire) && g.ready.is_empty() {
                    return;
                }
                let (g, _) = match self.cv.wait_timeout(g, Duration::from_millis(20)) {
                    Ok(pair) => pair,
                    Err(poisoned) => poisoned.into_inner(),
                };
                drop(g);
                continue;
            };
            let Some(first) = checkout(&mut g, first_idx, now, cfg, &mut spare_plans) else {
                continue;
            };
            entries.clear();
            let pool_key = (cfg.cross_session && first.pooled)
                .then(|| {
                    g.slots
                        .get(first_idx)
                        .and_then(|s| s.as_ref())
                        .map(|s| s.key.clone())
                })
                .flatten();
            entries.push(first);
            if let Some(key) = &pool_key {
                Self::gather_pooled(
                    &mut g,
                    key,
                    now,
                    cfg,
                    &mut spare_plans,
                    &mut entries,
                    &mut keep,
                );
            }
            drop(g);

            // Phase A + B of the pooled window: per-session prepare into
            // one stacked state matrix, then a single shared forward.
            let pooled_rows: usize = entries
                .iter()
                .filter(|e| e.pooled)
                .map(|e| e.plan.run.len())
                .sum();
            let pooled_sessions = entries.iter().filter(|e| e.pooled).count();
            let mut prepared = false;
            let mut pooled_ok = false;
            if pool_key.is_some() && pooled_rows > 0 {
                let dim = entries
                    .first()
                    .and_then(|e| e.model.inference_net())
                    .map(|n| n.input_dim())
                    .unwrap_or(0);
                if dim > 0 {
                    prepared = true;
                    states.resize(pooled_rows, dim);
                    let mut row = 0usize;
                    for e in entries.iter_mut().filter(|e| e.pooled) {
                        e.row0 = row;
                        acc_buf.clear();
                        acc_buf.extend(e.plan.run.iter().map(|r| (r.access, r.hit)));
                        if let Some(st) = e.model.window_prepare(&acc_buf) {
                            for k in 0..st.rows() {
                                states.row_mut(row + k).copy_from_slice(st.row(k));
                            }
                        }
                        row += e.plan.run.len();
                    }
                    pooled_ok = match (&pool_key, entries.first()) {
                        (Some(key), Some(e)) => pool.forward_into(key, &e.model, &states, &mut q),
                        _ => false,
                    };
                    if pooled_ok {
                        telemetry.batch(pooled_rows);
                        if pooled_sessions >= 2 {
                            telemetry.pool_batch(pooled_sessions);
                        }
                        if pool.quantize_enabled() {
                            telemetry.quantized_window(pooled_sessions);
                        }
                    }
                }
            }
            if !prepared {
                // Nothing was prepared: the classic per-session path is
                // still safe for everyone.
                for e in entries.iter_mut() {
                    e.pooled = false;
                }
            }

            // Phase C / classic execution, replies, and one socket write
            // per session.
            for e in entries.iter_mut() {
                let VisitEntry {
                    id,
                    conn,
                    model,
                    plan,
                    pooled,
                    row0,
                    prior,
                    served,
                    ckpt_key,
                    ..
                } = e;
                out_buf.clear();
                let mut n_served = 0u64;
                if *pooled {
                    let reqs = &plan.run;
                    acc_buf.clear();
                    acc_buf.extend(reqs.iter().map(|r| (r.access, r.hit)));
                    counts.clear();
                    if pooled_ok {
                        model.window_commit(&acc_buf, &q, *row0, |k, issued| {
                            if let Some(r) = reqs.get(k) {
                                encode_decision_into(&mut out_buf, r.req_id, issued);
                            }
                            counts.push(issued.len());
                        });
                    } else {
                        // Defensive fallback: forward through the
                        // session's own (identical) frozen weights.
                        model.window_forward(&mut q_own);
                        model.window_commit(&acc_buf, &q_own, 0, |k, issued| {
                            if let Some(r) = reqs.get(k) {
                                encode_decision_into(&mut out_buf, r.req_id, issued);
                            }
                            counts.push(issued.len());
                        });
                        telemetry.batch(reqs.len());
                    }
                    let done = Instant::now();
                    for (r, c) in reqs.iter().zip(counts.iter()) {
                        let us = done.saturating_duration_since(r.enqueued).as_micros();
                        telemetry.decision(u64::try_from(us).unwrap_or(u64::MAX), *c);
                    }
                    n_served = reqs.len() as u64;
                } else {
                    // Classic path: events apply in stream order, each
                    // run is its own batched decision window.
                    for op in &plan.ops {
                        match *op {
                            PlanOp::Event { kind, addr } => {
                                model.on_event(kind, addr);
                                telemetry.event();
                            }
                            PlanOp::Run { start, len } => {
                                let reqs = plan.run.get(start..start + len).unwrap_or(&[]);
                                acc_buf.clear();
                                acc_buf.extend(reqs.iter().map(|r| (r.access, r.hit)));
                                counts.clear();
                                model.on_run(&acc_buf, |k, issued| {
                                    if let Some(r) = reqs.get(k) {
                                        encode_decision_into(&mut out_buf, r.req_id, issued);
                                    }
                                    counts.push(issued.len());
                                });
                                let done = Instant::now();
                                for (r, c) in reqs.iter().zip(counts.iter()) {
                                    let us = done.saturating_duration_since(r.enqueued).as_micros();
                                    telemetry.decision(u64::try_from(us).unwrap_or(u64::MAX), *c);
                                }
                                telemetry.batch(reqs.len());
                                n_served += reqs.len() as u64;
                            }
                        }
                    }
                }
                for r in &plan.timed_out {
                    Reply::TimedOut { req_id: r.req_id }.encode_into(&mut out_buf);
                    telemetry.timeout();
                }
                if plan.saw_bye {
                    Reply::Goodbye {
                        decisions: *prior + n_served,
                    }
                    .encode_into(&mut out_buf);
                }
                // Checkpoint a retiring session *before* its Goodbye is
                // visible: a client that reconnects the instant it sees
                // the reply must find the file (file I/O stays outside
                // the shard lock).
                if let (Some(k), Some(dir)) = (ckpt_key.as_ref(), cfg.checkpoint_dir.as_deref()) {
                    if save_checkpoint_file(dir, &k.model, k.seed, k.fast, *id, model) {
                        telemetry.checkpoint_saved();
                    }
                }
                // One socket write for the session's whole visit; a
                // vanished client is the client's problem, the session
                // still drains.
                let _ = conn.send(&out_buf);
                *served = n_served;
            }

            // Return models (or retire on Bye) and recycle plans.
            let mut g = self.lock();
            for mut e in entries.drain(..) {
                let plan = std::mem::replace(&mut e.plan, DrainPlan::new());
                if let Some(slot_opt) = g.slots.get_mut(e.slot) {
                    if slot_opt.as_ref().is_some_and(|s| s.id == e.id) {
                        if plan.saw_bye {
                            *slot_opt = None;
                            g.free.push(e.slot);
                            telemetry.session_closed();
                        } else if let Some(slot) = slot_opt.as_mut() {
                            slot.model = Some(e.model);
                            slot.decisions = e.prior + e.served;
                            if !slot.queue.is_empty() && !slot.in_ready {
                                slot.in_ready = true;
                                g.ready.push_back(e.slot);
                            }
                        }
                    }
                }
                spare_plans.push(plan);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::AccessReq;
    use std::net::{TcpListener, TcpStream};

    fn loopback_conn() -> (Arc<Conn>, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = l.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = l.accept().expect("accept");
        (Conn::new(server_side), client)
    }

    fn access(id: u32) -> SessionCmd {
        SessionCmd::Access(AccessReq {
            req_id: id,
            access: MemAccess::load(u64::from(id), 0x400, 0x2000 + u64::from(id) * 64),
            hit: false,
            enqueued: Instant::now(),
            deadline: None,
        })
    }

    fn key(model: &str, seed: u64) -> SessionKey {
        SessionKey {
            model: model.to_string(),
            seed,
            fast: true,
        }
    }

    #[test]
    fn bounded_queue_bounces_accesses_and_drops_events() {
        let shard = Shard::new();
        let (conn, _client) = loopback_conn();
        let model = SessionModel::build("stride", 1, true).expect("builds");
        let slot = shard.register(9, model, conn, key("stride", 1));
        for i in 0..4 {
            assert_eq!(shard.enqueue(slot, 9, access(i), 4), Enqueue::Accepted);
        }
        assert_eq!(shard.enqueue(slot, 9, access(99), 4), Enqueue::Busy);
        assert_eq!(
            shard.enqueue(
                slot,
                9,
                SessionCmd::Event {
                    kind: crate::protocol::EventKind::DemandFill,
                    addr: 0x40
                },
                4
            ),
            Enqueue::Dropped
        );
        // Bye is always accepted so the session can terminate.
        assert_eq!(
            shard.enqueue(slot, 9, SessionCmd::Bye, 4),
            Enqueue::Accepted
        );
        // Wrong id (recycled slot) and unknown slot both answer gone.
        assert_eq!(shard.enqueue(slot, 77, access(0), 4), Enqueue::SessionGone);
        assert_eq!(
            shard.enqueue(slot + 17, 9, access(0), 4),
            Enqueue::SessionGone
        );
    }

    #[test]
    fn worker_drains_to_exit_after_input_closed() {
        let shard = Shard::new();
        let (conn, client) = loopback_conn();
        let model = SessionModel::build("stride", 2, true).expect("builds");
        let slot = shard.register(1, model, conn, key("stride", 2));
        for i in 0..10 {
            assert_eq!(shard.enqueue(slot, 1, access(i), 64), Enqueue::Accepted);
        }
        assert_eq!(
            shard.enqueue(slot, 1, SessionCmd::Bye, 64),
            Enqueue::Accepted
        );
        let telemetry = Telemetry::new();
        let input_closed = AtomicBool::new(true);
        let cfg = WorkerCfg {
            max_batch: 4,
            ..WorkerCfg::default()
        };
        // Runs on this thread: must terminate once the queue is flushed.
        shard.worker_loop(&input_closed, &telemetry, &cfg);
        let s = telemetry.snapshot();
        assert_eq!(s.decisions, 10);
        assert_eq!(s.sessions_closed, 1);
        assert!(s.batches >= 3, "max_batch=4 over 10 requests");
        drop(client);
    }

    #[test]
    fn bye_bypasses_full_queue_and_worker_retires_the_session() {
        // Regression: fill a session's queue to capacity, lose the
        // client, then deliver the final Bye. It must land despite the
        // full queue (a bounced Bye would leak the slot forever), the
        // worker must retire the session, and the slot must be recycled.
        let shard = Shard::new();
        let (conn, client) = loopback_conn();
        let model = SessionModel::build("stride", 3, true).expect("builds");
        let slot = shard.register(5, model, conn, key("stride", 3));
        for i in 0..4 {
            assert_eq!(shard.enqueue(slot, 5, access(i), 4), Enqueue::Accepted);
        }
        assert_eq!(shard.enqueue(slot, 5, access(99), 4), Enqueue::Busy);
        drop(client); // replies now fail to send — the session still drains
        assert_eq!(
            shard.enqueue(slot, 5, SessionCmd::Bye, 4),
            Enqueue::Accepted
        );
        let telemetry = Telemetry::new();
        let input_closed = AtomicBool::new(true);
        let cfg = WorkerCfg {
            max_batch: 2,
            ..WorkerCfg::default()
        };
        shard.worker_loop(&input_closed, &telemetry, &cfg);
        let s = telemetry.snapshot();
        assert_eq!(s.sessions_closed, 1);
        assert_eq!(s.decisions, 4);
        // The freed slot is reused by the next registration.
        let (conn2, _client2) = loopback_conn();
        let model2 = SessionModel::build("stride", 4, true).expect("builds");
        let slot2 = shard.register(6, model2, conn2, key("stride", 4));
        assert_eq!(slot2, slot, "retired slot is recycled via the free list");
    }

    #[test]
    fn same_key_frozen_sessions_share_pooled_windows() {
        let shard = Shard::new();
        let (conn_a, client_a) = loopback_conn();
        let (conn_b, client_b) = loopback_conn();
        let k = key("resemble_frozen", 7);
        let model_a = SessionModel::build("resemble_frozen", 7, true).expect("builds");
        let model_b = SessionModel::build("resemble_frozen", 7, true).expect("builds");
        let slot_a = shard.register(1, model_a, conn_a, k.clone());
        let slot_b = shard.register(2, model_b, conn_b, k);
        for i in 0..12 {
            assert_eq!(shard.enqueue(slot_a, 1, access(i), 64), Enqueue::Accepted);
            assert_eq!(
                shard.enqueue(slot_b, 2, access(i + 100), 64),
                Enqueue::Accepted
            );
        }
        assert_eq!(
            shard.enqueue(slot_a, 1, SessionCmd::Bye, 64),
            Enqueue::Accepted
        );
        assert_eq!(
            shard.enqueue(slot_b, 2, SessionCmd::Bye, 64),
            Enqueue::Accepted
        );
        let telemetry = Telemetry::new();
        let input_closed = AtomicBool::new(true);
        shard.worker_loop(&input_closed, &telemetry, &WorkerCfg::default());
        let s = telemetry.snapshot();
        assert_eq!(s.decisions, 24);
        assert_eq!(s.sessions_closed, 2);
        assert!(
            s.pool_batches >= 1,
            "both sessions were ready: at least one cross-session window"
        );
        assert!(s.pool_sessions >= 2);
        drop(client_a);
        drop(client_b);
    }

    #[test]
    fn quantized_frozen_windows_serve_and_count() {
        let shard = Shard::new();
        let (conn_a, client_a) = loopback_conn();
        let (conn_b, client_b) = loopback_conn();
        let k = key("resemble_frozen", 13);
        let model_a = SessionModel::build("resemble_frozen", 13, true).expect("builds");
        let model_b = SessionModel::build("resemble_frozen", 13, true).expect("builds");
        let slot_a = shard.register(1, model_a, conn_a, k.clone());
        let slot_b = shard.register(2, model_b, conn_b, k);
        for i in 0..12 {
            assert_eq!(shard.enqueue(slot_a, 1, access(i), 64), Enqueue::Accepted);
            assert_eq!(
                shard.enqueue(slot_b, 2, access(i + 100), 64),
                Enqueue::Accepted
            );
        }
        assert_eq!(
            shard.enqueue(slot_a, 1, SessionCmd::Bye, 64),
            Enqueue::Accepted
        );
        assert_eq!(
            shard.enqueue(slot_b, 2, SessionCmd::Bye, 64),
            Enqueue::Accepted
        );
        let telemetry = Telemetry::new();
        let input_closed = AtomicBool::new(true);
        let cfg = WorkerCfg {
            quantize_frozen: true,
            ..WorkerCfg::default()
        };
        shard.worker_loop(&input_closed, &telemetry, &cfg);
        let s = telemetry.snapshot();
        assert_eq!(s.decisions, 24, "every request is answered via int8");
        assert_eq!(s.sessions_closed, 2);
        assert!(
            s.quantized_windows >= 1,
            "quantized pooled path must have run"
        );
        assert!(s.quantized_sessions >= 2);
        drop(client_a);
        drop(client_b);
    }
}
