//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is `[len: u32 LE][type: u8][payload]`, where `len` counts
//! the type byte plus the payload. All integers are little-endian. The
//! protocol is deliberately tiny — a session opens with [`Request::Hello`]
//! (model name + seed), then streams [`Request::Access`] frames (one
//! decision request each) interleaved with optional [`Request::Event`]
//! frames (cache feedback, applied in stream order), and ends with
//! [`Request::Bye`]. The server answers accesses with
//! [`Reply::Decision`], or [`Reply::Busy`] (bounded-queue backpressure) /
//! [`Reply::TimedOut`] (deadline expired before processing). See
//! DESIGN.md §8 for the frame layout table.

use resemble_trace::MemAccess;
use std::io::{self, Read, Write};

/// Frames larger than this are rejected as corrupt.
pub const MAX_FRAME: usize = 1 << 20;

/// Upper bound on prefetch addresses carried by one decision reply.
pub const MAX_DECISION_ADDRS: usize = u16::MAX as usize;

// Request frame types.
const T_HELLO: u8 = 0x01;
const T_ACCESS: u8 = 0x02;
const T_EVENT: u8 = 0x03;
const T_BYE: u8 = 0x04;
// Reply frame types.
const T_ACCEPTED: u8 = 0x81;
const T_DECISION: u8 = 0x82;
const T_BUSY: u8 = 0x83;
const T_TIMED_OUT: u8 = 0x84;
const T_ERROR: u8 = 0x85;
const T_GOODBYE: u8 = 0x86;

/// Cache feedback a client streams between accesses, mirroring the
/// simulator's prefetcher hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A prefetched line arrived in the client's cache.
    PrefetchFill,
    /// A demand-missed line arrived.
    DemandFill,
    /// A line was evicted; the flag marks a never-used prefetch.
    Evict {
        /// `true` when the victim was a prefetched line never demanded.
        unused_prefetch: bool,
    },
}

/// A client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session: build `model` (a serve-registry name like
    /// `"resemble"`) seeded with `seed`; `fast` selects the laptop-scale
    /// training configuration.
    Hello {
        /// Model registry name.
        model: String,
        /// Model seed.
        seed: u64,
        /// Laptop-scale training configuration.
        fast: bool,
    },
    /// One decision request: the next access of the session's stream.
    Access {
        /// Client-chosen correlation id, echoed in the reply.
        req_id: u32,
        /// Deadline in microseconds from enqueue (0 = none). Requests
        /// still queued past their deadline get [`Reply::TimedOut`] and
        /// are *not* applied to the session model.
        deadline_us: u32,
        /// The access itself.
        access: MemAccess,
        /// Whether the access hit in the client's cache.
        hit: bool,
    },
    /// Cache feedback, applied to the session model in stream order.
    Event {
        /// What happened.
        kind: EventKind,
        /// Block-aligned byte address.
        addr: u64,
    },
    /// Close the session after all queued requests drain.
    Bye,
}

/// A server → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The session is open.
    Accepted {
        /// Server-assigned session id.
        session_id: u64,
    },
    /// The decision for one access: the prefetch addresses to issue.
    Decision {
        /// Echoed correlation id.
        req_id: u32,
        /// Prefetch byte addresses chosen by the ensemble.
        prefetches: Vec<u64>,
    },
    /// The session's bounded queue was full; the request was dropped.
    Busy {
        /// Echoed correlation id.
        req_id: u32,
    },
    /// The request's deadline expired before processing; it was dropped.
    TimedOut {
        /// Echoed correlation id.
        req_id: u32,
    },
    /// Protocol or session error; the connection will close.
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Session closed; final decision count for the session.
    Goodbye {
        /// Decisions served over the session's lifetime.
        decisions: u64,
    },
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Cursor-style reader over a payload, with bounds-checked takes.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(bad("truncated frame"));
        };
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> io::Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn done(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes in frame"))
        }
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Append one frame (`[len][type][payload]`) to `buf`; `payload` is
/// appended by the closure so encoders stay allocation-free.
fn frame_into(buf: &mut Vec<u8>, ty: u8, payload: impl FnOnce(&mut Vec<u8>)) {
    let len_at = buf.len();
    put_u32(buf, 0); // patched below
    buf.push(ty);
    payload(buf);
    let frame_len = buf.len() - len_at - 4;
    debug_assert!(frame_len <= MAX_FRAME, "oversized frame");
    let n = u32::try_from(frame_len).unwrap_or(0);
    buf[len_at..len_at + 4].copy_from_slice(&n.to_le_bytes());
}

impl Request {
    /// Append this request as one frame to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Hello { model, seed, fast } => frame_into(buf, T_HELLO, |b| {
                put_u16(b, u16::try_from(model.len()).unwrap_or(u16::MAX));
                b.extend_from_slice(model.as_bytes());
                put_u64(b, *seed);
                b.push(u8::from(*fast));
            }),
            Request::Access {
                req_id,
                deadline_us,
                access,
                hit,
            } => frame_into(buf, T_ACCESS, |b| {
                put_u32(b, *req_id);
                put_u32(b, *deadline_us);
                put_u64(b, access.instr_id);
                put_u64(b, access.pc);
                put_u64(b, access.addr);
                b.push(u8::from(access.is_write) | (u8::from(*hit) << 1));
            }),
            Request::Event { kind, addr } => frame_into(buf, T_EVENT, |b| {
                b.push(match kind {
                    EventKind::PrefetchFill => 0,
                    EventKind::DemandFill => 1,
                    EventKind::Evict {
                        unused_prefetch: false,
                    } => 2,
                    EventKind::Evict {
                        unused_prefetch: true,
                    } => 3,
                });
                put_u64(b, *addr);
            }),
            Request::Bye => frame_into(buf, T_BYE, |_| {}),
        }
    }

    /// Decode a request from a frame's type byte and payload.
    pub fn decode(ty: u8, payload: &[u8]) -> io::Result<Request> {
        let mut c = Cur::new(payload);
        let req = match ty {
            T_HELLO => {
                let n = c.u16()? as usize;
                let model = String::from_utf8(c.take(n)?.to_vec())
                    .map_err(|_| bad("model name is not UTF-8"))?;
                let seed = c.u64()?;
                let fast = c.u8()? != 0;
                Request::Hello { model, seed, fast }
            }
            T_ACCESS => {
                let req_id = c.u32()?;
                let deadline_us = c.u32()?;
                let instr_id = c.u64()?;
                let pc = c.u64()?;
                let addr = c.u64()?;
                let flags = c.u8()?;
                Request::Access {
                    req_id,
                    deadline_us,
                    access: MemAccess {
                        instr_id,
                        pc,
                        addr,
                        is_write: flags & 1 != 0,
                    },
                    hit: flags & 2 != 0,
                }
            }
            T_EVENT => {
                let kind = match c.u8()? {
                    0 => EventKind::PrefetchFill,
                    1 => EventKind::DemandFill,
                    2 => EventKind::Evict {
                        unused_prefetch: false,
                    },
                    3 => EventKind::Evict {
                        unused_prefetch: true,
                    },
                    _ => return Err(bad("unknown event kind")),
                };
                let addr = c.u64()?;
                Request::Event { kind, addr }
            }
            T_BYE => Request::Bye,
            _ => return Err(bad("unknown request frame type")),
        };
        c.done()?;
        Ok(req)
    }
}

/// Encode a decision reply straight from a slice (no intermediate `Vec`),
/// the server's per-decision hot path.
pub fn encode_decision_into(buf: &mut Vec<u8>, req_id: u32, prefetches: &[u64]) {
    debug_assert!(prefetches.len() <= MAX_DECISION_ADDRS);
    frame_into(buf, T_DECISION, |b| {
        put_u32(b, req_id);
        put_u16(b, u16::try_from(prefetches.len()).unwrap_or(u16::MAX));
        for &p in prefetches {
            put_u64(b, p);
        }
    });
}

impl Reply {
    /// Append this reply as one frame to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Reply::Accepted { session_id } => frame_into(buf, T_ACCEPTED, |b| {
                put_u64(b, *session_id);
            }),
            Reply::Decision { req_id, prefetches } => {
                encode_decision_into(buf, *req_id, prefetches);
            }
            Reply::Busy { req_id } => frame_into(buf, T_BUSY, |b| put_u32(b, *req_id)),
            Reply::TimedOut { req_id } => frame_into(buf, T_TIMED_OUT, |b| put_u32(b, *req_id)),
            Reply::Error { message } => frame_into(buf, T_ERROR, |b| {
                put_u16(b, u16::try_from(message.len()).unwrap_or(u16::MAX));
                b.extend_from_slice(message.as_bytes());
            }),
            Reply::Goodbye { decisions } => frame_into(buf, T_GOODBYE, |b| {
                put_u64(b, *decisions);
            }),
        }
    }

    /// Decode a reply from a frame's type byte and payload.
    pub fn decode(ty: u8, payload: &[u8]) -> io::Result<Reply> {
        let mut c = Cur::new(payload);
        let reply = match ty {
            T_ACCEPTED => Reply::Accepted {
                session_id: c.u64()?,
            },
            T_DECISION => {
                let req_id = c.u32()?;
                let n = c.u16()? as usize;
                let mut prefetches = Vec::with_capacity(n);
                for _ in 0..n {
                    prefetches.push(c.u64()?);
                }
                Reply::Decision { req_id, prefetches }
            }
            T_BUSY => Reply::Busy { req_id: c.u32()? },
            T_TIMED_OUT => Reply::TimedOut { req_id: c.u32()? },
            T_ERROR => {
                let n = c.u16()? as usize;
                let message = String::from_utf8(c.take(n)?.to_vec())
                    .map_err(|_| bad("error message is not UTF-8"))?;
                Reply::Error { message }
            }
            T_GOODBYE => Reply::Goodbye {
                decisions: c.u64()?,
            },
            _ => return Err(bad("unknown reply frame type")),
        };
        c.done()?;
        Ok(reply)
    }
}

/// Read one frame into `payload`, returning its type byte, or `None` on a
/// clean EOF at a frame boundary. `payload` is reused across calls.
pub fn read_frame(r: &mut impl Read, payload: &mut Vec<u8>) -> io::Result<Option<u8>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(bad("frame length out of range"));
    }
    let mut ty = [0u8; 1];
    r.read_exact(&mut ty)?;
    payload.clear();
    payload.resize(len - 1, 0);
    r.read_exact(payload)?;
    Ok(Some(ty[0]))
}

/// Write pre-encoded frames and flush.
pub fn write_all(w: &mut impl Write, buf: &[u8]) -> io::Result<()> {
    w.write_all(buf)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let mut buf = Vec::new();
        req.encode_into(&mut buf);
        let mut r = &buf[..];
        let mut payload = Vec::new();
        let ty = read_frame(&mut r, &mut payload).unwrap().unwrap();
        assert_eq!(Request::decode(ty, &payload).unwrap(), req);
        assert!(r.is_empty());
    }

    fn roundtrip_reply(reply: Reply) {
        let mut buf = Vec::new();
        reply.encode_into(&mut buf);
        let mut r = &buf[..];
        let mut payload = Vec::new();
        let ty = read_frame(&mut r, &mut payload).unwrap().unwrap();
        assert_eq!(Reply::decode(ty, &payload).unwrap(), reply);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello {
            model: "resemble".into(),
            seed: 0xDEAD_BEEF,
            fast: true,
        });
        roundtrip_req(Request::Access {
            req_id: 7,
            deadline_us: 1500,
            access: MemAccess::load(10, 0x400100, 0x7FFF_1234_5678),
            hit: true,
        });
        roundtrip_req(Request::Access {
            req_id: u32::MAX,
            deadline_us: 0,
            access: MemAccess::store(11, 0x400104, 0x40),
            hit: false,
        });
        for kind in [
            EventKind::PrefetchFill,
            EventKind::DemandFill,
            EventKind::Evict {
                unused_prefetch: false,
            },
            EventKind::Evict {
                unused_prefetch: true,
            },
        ] {
            roundtrip_req(Request::Event { kind, addr: 0x1000 });
        }
        roundtrip_req(Request::Bye);
    }

    #[test]
    fn replies_roundtrip() {
        roundtrip_reply(Reply::Accepted { session_id: 3 });
        roundtrip_reply(Reply::Decision {
            req_id: 9,
            prefetches: vec![0x40, 0x80, u64::MAX],
        });
        roundtrip_reply(Reply::Decision {
            req_id: 10,
            prefetches: vec![],
        });
        roundtrip_reply(Reply::Busy { req_id: 11 });
        roundtrip_reply(Reply::TimedOut { req_id: 12 });
        roundtrip_reply(Reply::Error {
            message: "unknown model".into(),
        });
        roundtrip_reply(Reply::Goodbye { decisions: 12345 });
    }

    #[test]
    fn pipelined_frames_decode_in_order() {
        let mut buf = Vec::new();
        for i in 0..50u32 {
            Request::Access {
                req_id: i,
                deadline_us: 0,
                access: MemAccess::load(i as u64, 0x400, 0x1000 + 64 * i as u64),
                hit: false,
            }
            .encode_into(&mut buf);
        }
        let mut r = &buf[..];
        let mut payload = Vec::new();
        for i in 0..50u32 {
            let ty = read_frame(&mut r, &mut payload).unwrap().unwrap();
            match Request::decode(ty, &payload).unwrap() {
                Request::Access { req_id, .. } => assert_eq!(req_id, i),
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!(read_frame(&mut r, &mut payload).unwrap(), None);
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        // Oversized length.
        let mut buf = Vec::new();
        put_u32(&mut buf, (MAX_FRAME + 2) as u32);
        buf.push(T_BYE);
        assert!(read_frame(&mut &buf[..], &mut Vec::new()).is_err());
        // Zero length.
        let buf = 0u32.to_le_bytes().to_vec();
        assert!(read_frame(&mut &buf[..], &mut Vec::new()).is_err());
        // Unknown type.
        assert!(Request::decode(0x7F, &[]).is_err());
        assert!(Reply::decode(0x7F, &[]).is_err());
        // Truncated payload.
        assert!(Request::decode(T_ACCESS, &[1, 2, 3]).is_err());
        // Trailing garbage.
        let mut buf = Vec::new();
        Request::Bye.encode_into(&mut buf);
        assert!(Request::decode(T_BYE, &[0xAA]).is_err());
    }

    #[test]
    fn encode_decision_matches_reply_encoder() {
        let mut a = Vec::new();
        encode_decision_into(&mut a, 42, &[1, 2, 3]);
        let mut b = Vec::new();
        Reply::Decision {
            req_id: 42,
            prefetches: vec![1, 2, 3],
        }
        .encode_into(&mut b);
        assert_eq!(a, b);
    }
}
