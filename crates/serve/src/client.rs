//! A small blocking client for the serve protocol, used by the loopback
//! tests and the `serve_bench` load generator.
//!
//! Requests are encoded into a local buffer and only hit the socket on
//! [`ServeClient::flush`], so a caller can pipeline a window of accesses
//! in one write and then collect the replies.

use crate::protocol::{read_frame, write_all, EventKind, Reply, Request};
use resemble_trace::MemAccess;
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

/// Blocking protocol client.
pub struct ServeClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    w_buf: Vec<u8>,
    payload: Vec<u8>,
}

impl ServeClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(ServeClient {
            writer,
            reader,
            w_buf: Vec::new(),
            payload: Vec::new(),
        })
    }

    /// Open a session; returns the server-assigned session id.
    pub fn hello(&mut self, model: &str, seed: u64, fast: bool) -> io::Result<u64> {
        Request::Hello {
            model: model.to_string(),
            seed,
            fast,
        }
        .encode_into(&mut self.w_buf);
        self.flush()?;
        match self.recv()? {
            Some(Reply::Accepted { session_id }) => Ok(session_id),
            Some(Reply::Error { message }) => Err(io::Error::other(message)),
            other => Err(io::Error::other(format!("unexpected reply {other:?}"))),
        }
    }

    /// Queue a decision request (sent on the next [`ServeClient::flush`]).
    pub fn queue_access(&mut self, req_id: u32, deadline_us: u32, access: MemAccess, hit: bool) {
        Request::Access {
            req_id,
            deadline_us,
            access,
            hit,
        }
        .encode_into(&mut self.w_buf);
    }

    /// Queue a cache-feedback event.
    pub fn queue_event(&mut self, kind: EventKind, addr: u64) {
        Request::Event { kind, addr }.encode_into(&mut self.w_buf);
    }

    /// Queue the session goodbye.
    pub fn queue_bye(&mut self) {
        Request::Bye.encode_into(&mut self.w_buf);
    }

    /// Write everything queued in one socket write.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.w_buf.is_empty() {
            return Ok(());
        }
        write_all(&mut self.writer, &self.w_buf)?;
        self.w_buf.clear();
        Ok(())
    }

    /// Read the next reply; `None` on clean EOF.
    pub fn recv(&mut self) -> io::Result<Option<Reply>> {
        match read_frame(&mut self.reader, &mut self.payload)? {
            Some(ty) => Reply::decode(ty, &self.payload).map(Some),
            None => Ok(None),
        }
    }

    /// Convenience: send one access and block for its reply.
    pub fn request_decision(
        &mut self,
        req_id: u32,
        deadline_us: u32,
        access: MemAccess,
        hit: bool,
    ) -> io::Result<Reply> {
        self.queue_access(req_id, deadline_us, access, hit);
        self.flush()?;
        match self.recv()? {
            Some(reply) => Ok(reply),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before replying",
            )),
        }
    }
}
