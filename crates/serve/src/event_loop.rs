//! Nonblocking epoll I/O event loop: accept, frame reassembly, and
//! connection lifecycle for every client, on a fixed number of threads.
//!
//! The previous design spawned one blocking reader thread per connection
//! and — the actual bug this module replaces — pushed a cloned stream and
//! a `JoinHandle` into grow-only vectors that were pruned only at
//! shutdown, so every connection leaked an fd, a thread, and its stack
//! until the process drained. Here connections live in a slab owned by
//! their event-loop thread: the epoll token *is* the slab index, closing
//! a connection deregisters it and recycles the slot immediately, and the
//! thread count is fixed by config rather than by client count. Leak
//! freedom is by construction, and `connections_opened ==
//! connections_closed` after drain is asserted by the churn tests.
//!
//! Thread 0 owns the nonblocking listener and distributes accepted
//! streams round-robin across all event-loop threads through eventfd-woken
//! mailboxes. Each thread runs level-triggered `epoll_wait` over its own
//! connections: reads are nonblocking with per-connection frame
//! reassembly buffers, a Hello registers the session on shard
//! `id % shards` (infallible modulo indexing — a routing failure answers
//! `Error`, never a silent fallback to shard 0), and EOF/error/Bye all
//! funnel through one close path that enqueues the session's final `Bye`
//! exactly once. No libc crate exists in the vendored workspace, so the
//! handful of syscalls are declared directly, in the style of
//! [`crate::server::signal`]. This file is on the decision hot path
//! (`panic-in-hot-path` scope): no panics, no literal indexing.

use crate::batcher::{AccessReq, SessionCmd};
use crate::pool::SessionKey;
use crate::protocol::{Reply, Request, MAX_FRAME};
use crate::session::{load_checkpoint_file, ModelBuilder};
use crate::shard::{Conn, Enqueue, Shard};
use crate::telemetry::Telemetry;
use std::io::{self, Read};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Raw epoll/eventfd bindings. The vendored workspace has no libc crate,
/// so the syscalls are declared directly (same pattern as the `signal`
/// module). Linux-only, like the rest of the serve layer's CI surface.
mod sys {
    use std::io;

    /// Readable.
    pub const EPOLLIN: u32 = 0x001;
    /// Peer half-closed its write side.
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// Kernel `struct epoll_event`. Packed on x86_64 (only), matching the
    /// kernel ABI; field reads below copy out of the struct, never take
    /// references into it.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        events: u32,
        data: u64,
    }

    impl EpollEvent {
        fn new(events: u32, data: u64) -> Self {
            Self { events, data }
        }

        /// The registration token (a copy; safe for the packed layout).
        pub fn token(&self) -> u64 {
            self.data
        }
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// An owned epoll instance.
    pub struct Epoll {
        fd: i32,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes no pointers; a negative return
            // (checked below) is the only failure mode.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { fd })
        }

        pub fn add(&self, fd: i32, token: u64, events: u32) -> io::Result<()> {
            let mut ev = EpollEvent::new(events, token);
            // SAFETY: `ev` is a live, properly laid-out (#[repr(C,
            // packed)]) EpollEvent for the duration of the call; the
            // kernel copies it before returning.
            let rc = unsafe { epoll_ctl(self.fd, EPOLL_CTL_ADD, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn del(&self, fd: i32) {
            // A pre-2.6.9 quirk requires a non-null event even for DEL.
            let mut ev = EpollEvent::default();
            // SAFETY: `ev` outlives the call; DEL ignores its contents
            // but the pointer must be valid (the quirk above).
            let _ = unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) };
        }

        /// Wait for readiness; EINTR and errors report as an empty wake.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> usize {
            let cap = i32::try_from(events.len()).unwrap_or(i32::MAX).max(1);
            // SAFETY: `events.as_mut_ptr()` points at `events.len()`
            // writable EpollEvent slots and `cap` never exceeds that
            // length, so the kernel writes only into the slice.
            let n = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), cap, timeout_ms) };
            usize::try_from(n).unwrap_or(0)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: `self.fd` is a valid descriptor this struct owns
            // exclusively, closed exactly once (drop runs once).
            unsafe {
                close(self.fd);
            }
        }
    }

    /// A nonblocking eventfd used to wake an event loop from other
    /// threads (new-connection mailbox deliveries, shutdown).
    pub struct EventFd {
        fd: i32,
    }

    impl EventFd {
        pub fn new() -> io::Result<EventFd> {
            // SAFETY: eventfd takes no pointers; a negative return
            // (checked below) is the only failure mode.
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EventFd { fd })
        }

        pub fn fd(&self) -> i32 {
            self.fd
        }

        /// Make the fd readable (wake the owning epoll loop).
        pub fn signal(&self) {
            let one: u64 = 1;
            let p = std::ptr::addr_of!(one).cast::<u8>();
            // SAFETY: `p` points at the 8 readable bytes of the local
            // `one`, which outlives the call.
            let _ = unsafe { write(self.fd, p, 8) };
        }

        /// Consume pending wakeups so level-triggered epoll quiesces.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            // SAFETY: `buf` provides exactly the 8 writable bytes the
            // kernel may fill.
            let _ = unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            // SAFETY: `self.fd` is a valid descriptor this struct owns
            // exclusively, closed exactly once (drop runs once).
            unsafe {
                close(self.fd);
            }
        }
    }
}

/// Epoll token of the listening socket (thread 0 only).
const LISTEN_TOKEN: u64 = u64::MAX;
/// Epoll token of the thread's mailbox eventfd.
const WAKE_TOKEN: u64 = u64::MAX - 1;
/// Bytes read from one connection per readiness event before yielding to
/// the next (level-triggered epoll re-reports any remainder).
const FAIR_READ_BYTES: usize = 64 * 1024;

/// Shared state every event-loop thread works against.
pub(crate) struct IoCtx {
    pub(crate) shards: Vec<Arc<Shard>>,
    pub(crate) builder: ModelBuilder,
    pub(crate) telemetry: Arc<Telemetry>,
    pub(crate) queue_cap: usize,
    pub(crate) next_session: AtomicU64,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) checkpoint_dir: Option<PathBuf>,
}

/// An event-loop thread's inbox: accepted streams parked by the
/// accepting thread, plus the eventfd that wakes the owner to collect
/// them (and to notice shutdown).
pub(crate) struct IoMailbox {
    inbox: Mutex<Vec<TcpStream>>,
    wake: sys::EventFd,
}

impl IoMailbox {
    pub(crate) fn new() -> io::Result<IoMailbox> {
        Ok(IoMailbox {
            inbox: Mutex::new(Vec::new()),
            wake: sys::EventFd::new()?,
        })
    }

    /// Park an accepted stream for the owning thread and wake it.
    fn deliver(&self, stream: TcpStream) {
        // The critical section only pushes onto a Vec; no I/O or model
        // work ever runs under this lock.
        // lint:allow(blocking-in-event-loop): bounded mailbox handoff
        let mut g = self.inbox.lock().unwrap_or_else(PoisonError::into_inner);
        g.push(stream);
        drop(g);
        self.wake.signal();
    }

    /// Wake the owning thread without delivering anything (shutdown).
    pub(crate) fn wake(&self) {
        self.wake.signal();
    }

    fn collect(&self, into: &mut Vec<TcpStream>) {
        self.wake.drain();
        // lint:allow(blocking-in-event-loop): bounded mailbox handoff — the critical section only appends one Vec into another
        let mut g = self.inbox.lock().unwrap_or_else(PoisonError::into_inner);
        into.append(&mut g);
    }
}

/// Incremental frame reassembly over a nonblocking stream: buffered
/// bytes, with complete `[len][type][payload]` frames peeled off the
/// front. Mirrors [`crate::protocol::read_frame`]'s validation exactly.
struct FrameBuf {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuf {
    const READ_CHUNK: usize = 16 * 1024;

    fn new() -> FrameBuf {
        FrameBuf {
            buf: Vec::new(),
            start: 0,
        }
    }

    /// One `read(2)` into the tail. `Ok(0)` is EOF; `WouldBlock` means
    /// the socket is drained for now.
    fn fill_from(&mut self, stream: &mut TcpStream) -> io::Result<usize> {
        // Reclaim consumed front space before growing the tail.
        if self.start > 0 && (self.start >= self.buf.len() || self.start >= Self::READ_CHUNK) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let len = self.buf.len();
        self.buf.resize(len + Self::READ_CHUNK, 0);
        let tail = self.buf.get_mut(len..).unwrap_or(&mut []);
        match stream.read(tail) {
            Ok(n) => {
                self.buf.truncate(len + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(len);
                Err(e)
            }
        }
    }

    /// Peel the next complete frame into `payload`, returning its type
    /// byte; `Ok(None)` means more bytes are needed. Length-0 and
    /// oversized frames are protocol errors, exactly as in `read_frame`.
    fn next_frame(&mut self, payload: &mut Vec<u8>) -> io::Result<Option<u8>> {
        let avail = self.buf.get(self.start..).unwrap_or(&[]);
        let Some(hdr) = avail.get(..4) else {
            return Ok(None);
        };
        let mut four = [0u8; 4];
        four.copy_from_slice(hdr);
        let len = u32::from_le_bytes(four) as usize;
        if len == 0 || len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad frame length",
            ));
        }
        let total = 4 + len;
        if avail.len() < total {
            return Ok(None);
        }
        let Some(&ty) = avail.get(4) else {
            return Ok(None);
        };
        payload.clear();
        payload.extend_from_slice(avail.get(5..total).unwrap_or(&[]));
        self.start += total;
        Ok(Some(ty))
    }

    /// `true` when no partial frame is pending (clean EOF point).
    fn at_boundary(&self) -> bool {
        self.start >= self.buf.len()
    }
}

struct SessionRef {
    id: u64,
    shard: usize,
    slot: usize,
}

struct ConnSlot {
    stream: TcpStream,
    conn: Arc<Conn>,
    fbuf: FrameBuf,
    session: Option<SessionRef>,
    said_bye: bool,
}

/// One event-loop thread. `listener` is `Some` only on thread 0.
pub(crate) fn io_loop(
    idx: usize,
    listener: Option<TcpListener>,
    mailboxes: Arc<Vec<IoMailbox>>,
    ctx: Arc<IoCtx>,
) {
    let Ok(ep) = sys::Epoll::new() else {
        return;
    };
    let mut lp = IoLoop {
        idx,
        ep,
        listener,
        mailboxes,
        ctx,
        slots: Vec::new(),
        free: Vec::new(),
        payload: Vec::new(),
        reply_buf: Vec::new(),
        incoming: Vec::new(),
        rr: idx,
    };
    lp.run();
}

struct IoLoop {
    idx: usize,
    ep: sys::Epoll,
    listener: Option<TcpListener>,
    mailboxes: Arc<Vec<IoMailbox>>,
    ctx: Arc<IoCtx>,
    slots: Vec<Option<ConnSlot>>,
    free: Vec<usize>,
    payload: Vec<u8>,
    reply_buf: Vec<u8>,
    incoming: Vec<TcpStream>,
    /// Round-robin cursor for distributing accepted streams.
    rr: usize,
}

impl IoLoop {
    fn run(&mut self) {
        let Some(me) = self.mailboxes.get(self.idx) else {
            return;
        };
        if self.ep.add(me.wake.fd(), WAKE_TOKEN, sys::EPOLLIN).is_err() {
            return;
        }
        if let Some(l) = &self.listener {
            let _ = l.set_nonblocking(true);
            if self
                .ep
                .add(l.as_raw_fd(), LISTEN_TOKEN, sys::EPOLLIN)
                .is_err()
            {
                return;
            }
        }
        let mut events = vec![sys::EpollEvent::default(); 256];
        while !self.ctx.shutdown.load(Ordering::Acquire) {
            let n = self.ep.wait(&mut events, 100);
            if self.ctx.shutdown.load(Ordering::Acquire) {
                break;
            }
            for k in 0..n {
                let Some(ev) = events.get(k) else {
                    break;
                };
                match ev.token() {
                    LISTEN_TOKEN => self.accept_burst(),
                    WAKE_TOKEN => self.collect_mailbox(),
                    tok => self.service_conn(usize::try_from(tok).unwrap_or(usize::MAX)),
                }
            }
        }
        self.drain_all();
    }

    /// Shutdown drain: half-close every connection's read side (parity
    /// with the blocking design, so clients mid-stream see EOF), enqueue
    /// each live session's final `Bye`, and deregister everything. After
    /// this, `connections_closed` has caught up with `connections_opened`
    /// for this thread.
    fn drain_all(&mut self) {
        // Late mailbox deliveries still own fds; close them too.
        if let Some(me) = self.mailboxes.get(self.idx) {
            me.collect(&mut self.incoming);
        }
        self.incoming.clear();
        for tok in 0..self.slots.len() {
            let live = self.slots.get(tok).is_some_and(Option::is_some);
            if live {
                if let Some(cs) = self.slots.get(tok).and_then(|s| s.as_ref()) {
                    let _ = cs.stream.shutdown(Shutdown::Read);
                }
                self.close_conn(tok);
            }
        }
    }

    /// Accept until the listener would block, handing streams out
    /// round-robin across all event-loop threads.
    fn accept_burst(&mut self) {
        loop {
            let Some(l) = &self.listener else {
                return;
            };
            match l.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    let n = self.mailboxes.len().max(1);
                    self.rr = (self.rr + 1) % n;
                    if self.rr == self.idx {
                        self.register_conn(stream);
                    } else if let Some(mb) = self.mailboxes.get(self.rr) {
                        mb.deliver(stream);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return, // WouldBlock or a transient accept error
            }
        }
    }

    /// Adopt streams other threads parked in our mailbox.
    fn collect_mailbox(&mut self) {
        let Some(me) = self.mailboxes.get(self.idx) else {
            return;
        };
        let mut incoming = std::mem::take(&mut self.incoming);
        me.collect(&mut incoming);
        for stream in incoming.drain(..) {
            self.register_conn(stream);
        }
        self.incoming = incoming;
    }

    /// Put a connection into the slab and the epoll set. The slab index
    /// is the epoll token; slots are recycled through the free list on
    /// close, so the slab stays bounded by peak concurrent connections.
    fn register_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let Ok(write_half) = stream.try_clone() else {
            return;
        };
        let conn = Conn::new(write_half);
        let tok = match self.free.pop() {
            Some(t) => t,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        if self
            .ep
            .add(
                stream.as_raw_fd(),
                tok as u64,
                sys::EPOLLIN | sys::EPOLLRDHUP,
            )
            .is_err()
        {
            self.free.push(tok);
            return;
        }
        if let Some(slot) = self.slots.get_mut(tok) {
            *slot = Some(ConnSlot {
                stream,
                conn,
                fbuf: FrameBuf::new(),
                session: None,
                said_bye: false,
            });
            self.ctx.telemetry.conn_opened();
        }
    }

    /// Deregister and drop a connection, enqueueing the session's final
    /// `Bye` if it never said one (EOF, error, drain) — the single close
    /// path that makes session retirement unconditional.
    fn close_conn(&mut self, tok: usize) {
        let Some(cs) = self.slots.get_mut(tok).and_then(Option::take) else {
            return;
        };
        self.ep.del(cs.stream.as_raw_fd());
        if !cs.said_bye {
            if let Some(sref) = &cs.session {
                let _ = self.enqueue_bye(sref);
            }
        }
        self.free.push(tok);
        self.ctx.telemetry.conn_closed();
        // `cs.stream` (read half) drops here; `cs.conn` may outlive us in
        // a shard worker until the session's Goodbye is flushed.
    }

    fn enqueue_bye(&self, sref: &SessionRef) -> Enqueue {
        let Some(shard) = self.ctx.shards.get(sref.shard) else {
            return Enqueue::SessionGone;
        };
        // Bye bypasses the queue cap by contract — it always lands.
        shard.enqueue(sref.slot, sref.id, SessionCmd::Bye, self.ctx.queue_cap)
    }

    /// Readable: pull bytes, peel frames, dispatch. Caps bytes consumed
    /// per event for fairness; level-triggered epoll re-reports leftovers.
    fn service_conn(&mut self, tok: usize) {
        let mut consumed = 0usize;
        loop {
            let Some(cs) = self.slots.get_mut(tok).and_then(|s| s.as_mut()) else {
                return;
            };
            match cs.fbuf.fill_from(&mut cs.stream) {
                Ok(0) => {
                    // EOF: honor any already-buffered complete frames,
                    // then flag a truncated trailer and close.
                    if !self.dispatch_frames(tok) {
                        return;
                    }
                    let mid_frame = self
                        .slots
                        .get(tok)
                        .and_then(|s| s.as_ref())
                        .is_some_and(|cs| !cs.fbuf.at_boundary());
                    if mid_frame {
                        self.ctx.telemetry.protocol_error();
                    }
                    self.close_conn(tok);
                    return;
                }
                Ok(n) => {
                    if !self.dispatch_frames(tok) {
                        return;
                    }
                    consumed += n;
                    if consumed >= FAIR_READ_BYTES {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.ctx.telemetry.protocol_error();
                    self.close_conn(tok);
                    return;
                }
            }
        }
    }

    /// Peel and handle every complete frame currently buffered. Returns
    /// `false` once the connection has been closed (stop touching `tok`).
    fn dispatch_frames(&mut self, tok: usize) -> bool {
        loop {
            let frame = {
                let Some(cs) = self.slots.get_mut(tok).and_then(|s| s.as_mut()) else {
                    return false;
                };
                cs.fbuf.next_frame(&mut self.payload)
            };
            match frame {
                Ok(Some(ty)) => {
                    if !self.handle_frame(tok, ty) {
                        return false;
                    }
                }
                Ok(None) => return true,
                Err(_) => {
                    self.ctx.telemetry.protocol_error();
                    self.close_conn(tok);
                    return false;
                }
            }
        }
    }

    /// One decoded frame. Returns `false` once the connection was closed.
    fn handle_frame(&mut self, tok: usize, ty: u8) -> bool {
        let req = Request::decode(ty, &self.payload);
        let has_session = self
            .slots
            .get(tok)
            .and_then(|s| s.as_ref())
            .is_some_and(|cs| cs.session.is_some());
        match (req, has_session) {
            (Ok(Request::Hello { model, seed, fast }), false) => {
                self.handle_hello(tok, model, seed, fast)
            }
            (
                Ok(Request::Access {
                    req_id,
                    deadline_us,
                    access,
                    hit,
                }),
                true,
            ) => {
                let enqueued = Instant::now();
                let deadline = (deadline_us > 0)
                    .then(|| enqueued + Duration::from_micros(u64::from(deadline_us)));
                let cmd = SessionCmd::Access(AccessReq {
                    req_id,
                    access,
                    hit,
                    enqueued,
                    deadline,
                });
                match self.enqueue_for(tok, cmd) {
                    Enqueue::Busy => {
                        self.ctx.telemetry.busy();
                        self.send_reply(tok, &Reply::Busy { req_id });
                        true
                    }
                    Enqueue::SessionGone => {
                        self.close_conn(tok);
                        false
                    }
                    _ => true,
                }
            }
            (Ok(Request::Event { kind, addr }), true) => {
                match self.enqueue_for(tok, SessionCmd::Event { kind, addr }) {
                    Enqueue::Dropped => {
                        self.ctx.telemetry.event_dropped();
                        true
                    }
                    Enqueue::SessionGone => {
                        self.close_conn(tok);
                        false
                    }
                    _ => true,
                }
            }
            (Ok(Request::Bye), true) => {
                // The worker flushes the queue and answers Goodbye; mark
                // the Bye as sent so the close path doesn't enqueue a
                // second one.
                let _ = self.enqueue_for(tok, SessionCmd::Bye);
                if let Some(cs) = self.slots.get_mut(tok).and_then(|s| s.as_mut()) {
                    cs.said_bye = true;
                }
                self.close_conn(tok);
                false
            }
            (Ok(_), _) | (Err(_), _) => {
                // Hello mid-session, pre-Hello traffic, or a malformed
                // payload: answer Error and hang up.
                self.ctx.telemetry.protocol_error();
                let message = if has_session {
                    "unexpected frame".to_string()
                } else {
                    "expected Hello".to_string()
                };
                self.send_reply(tok, &Reply::Error { message });
                self.close_conn(tok);
                false
            }
        }
    }

    /// Hello handshake: build the model (warm-starting from a checkpoint
    /// when one exists), route to shard `id % shards`, register, answer
    /// Accepted. Every failure path answers `Error` — never a silent
    /// close, and never a fallback to shard 0.
    fn handle_hello(&mut self, tok: usize, model: String, seed: u64, fast: bool) -> bool {
        let built = (self.ctx.builder)(&model, seed, fast);
        let mut m = match built {
            Ok(m) => m,
            Err(message) => {
                self.ctx.telemetry.protocol_error();
                self.send_reply(tok, &Reply::Error { message });
                self.close_conn(tok);
                return false;
            }
        };
        if let Some(dir) = &self.ctx.checkpoint_dir {
            if load_checkpoint_file(dir, &model, seed, fast, &mut m) {
                self.ctx.telemetry.checkpoint_loaded();
            }
        }
        let id = self.ctx.next_session.fetch_add(1, Ordering::Relaxed);
        let n_shards = self.ctx.shards.len();
        // Infallible routing: `id % n < n`, so the index is always in
        // range; `get` only misses when there are zero shards at all.
        let shard_idx = (id % n_shards.max(1) as u64) as usize;
        let Some(shard) = self.ctx.shards.get(shard_idx) else {
            self.ctx.telemetry.protocol_error();
            self.send_reply(
                tok,
                &Reply::Error {
                    message: "no shards available".to_string(),
                },
            );
            self.close_conn(tok);
            return false;
        };
        let key = SessionKey { model, seed, fast };
        let Some(cs) = self.slots.get_mut(tok).and_then(|s| s.as_mut()) else {
            return false;
        };
        let slot = shard.register(id, m, Arc::clone(&cs.conn), key);
        cs.session = Some(SessionRef {
            id,
            shard: shard_idx,
            slot,
        });
        self.ctx.telemetry.session_opened();
        self.send_reply(tok, &Reply::Accepted { session_id: id });
        true
    }

    fn enqueue_for(&self, tok: usize, cmd: SessionCmd) -> Enqueue {
        let Some(sref) = self
            .slots
            .get(tok)
            .and_then(|s| s.as_ref())
            .and_then(|cs| cs.session.as_ref())
        else {
            return Enqueue::SessionGone;
        };
        let Some(shard) = self.ctx.shards.get(sref.shard) else {
            return Enqueue::SessionGone;
        };
        shard.enqueue(sref.slot, sref.id, cmd, self.ctx.queue_cap)
    }

    fn send_reply(&mut self, tok: usize, reply: &Reply) {
        let Some(cs) = self.slots.get(tok).and_then(|s| s.as_ref()) else {
            return;
        };
        self.reply_buf.clear();
        reply.encode_into(&mut self.reply_buf);
        let _ = cs.conn.send(&self.reply_buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = l.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = l.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        (client, server_side)
    }

    fn frame(ty: u8, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        let len = u32::try_from(1 + payload.len()).expect("fits");
        out.extend_from_slice(&len.to_le_bytes());
        out.push(ty);
        out.extend_from_slice(payload);
        out
    }

    fn drain_ready(fb: &mut FrameBuf, stream: &mut TcpStream) -> Vec<(u8, Vec<u8>)> {
        let mut got = Vec::new();
        let mut payload = Vec::new();
        loop {
            match fb.fill_from(stream) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("read: {e}"),
            }
        }
        while let Some(ty) = fb.next_frame(&mut payload).expect("parse") {
            got.push((ty, payload.clone()));
        }
        got
    }

    #[test]
    fn frames_reassemble_across_partial_writes() {
        let (mut client, mut server) = loopback_pair();
        let f1 = frame(0x42, b"hello");
        let f2 = frame(0x01, &[7u8; 300]);
        let mut wire = f1.clone();
        wire.extend_from_slice(&f2);
        // Dribble the bytes a few at a time; frames must pop out whole.
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(3) {
            client.write_all(chunk).expect("write");
            client.flush().expect("flush");
            // Give the loopback a moment to land the bytes.
            std::thread::sleep(Duration::from_millis(1));
            got.extend(drain_ready(&mut fb, &mut server));
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got.first().map(|(t, p)| (*t, p.len())), Some((0x42, 5)));
        assert_eq!(got.get(1).map(|(t, p)| (*t, p.len())), Some((0x01, 300)));
        assert!(fb.at_boundary());
    }

    #[test]
    fn zero_and_oversized_lengths_are_protocol_errors() {
        let mut fb = FrameBuf::new();
        fb.buf.extend_from_slice(&0u32.to_le_bytes());
        let mut payload = Vec::new();
        assert!(fb.next_frame(&mut payload).is_err());

        let mut fb = FrameBuf::new();
        fb.buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(fb.next_frame(&mut payload).is_err());
    }

    #[test]
    fn partial_frame_reports_not_at_boundary() {
        let mut fb = FrameBuf::new();
        let full = frame(0x02, b"abcdef");
        fb.buf.extend_from_slice(full.get(..6).expect("prefix"));
        let mut payload = Vec::new();
        assert_eq!(fb.next_frame(&mut payload).expect("parse"), None);
        assert!(!fb.at_boundary());
        fb.buf.extend_from_slice(full.get(6..).expect("suffix"));
        assert_eq!(fb.next_frame(&mut payload).expect("parse"), Some(0x02));
        assert_eq!(payload, b"abcdef");
        assert!(fb.at_boundary());
    }

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = sys::Epoll::new().expect("epoll");
        let efd = sys::EventFd::new().expect("eventfd");
        ep.add(efd.fd(), 42, sys::EPOLLIN).expect("add");
        let mut events = vec![sys::EpollEvent::default(); 4];
        // Not signalled: times out empty.
        assert_eq!(ep.wait(&mut events, 0), 0);
        efd.signal();
        let n = ep.wait(&mut events, 1000);
        assert_eq!(n, 1);
        assert_eq!(events.first().map(sys::EpollEvent::token), Some(42));
        // Drained: quiesces again (level-triggered would re-report).
        efd.drain();
        assert_eq!(ep.wait(&mut events, 0), 0);
    }

    #[test]
    fn mailbox_delivery_signals_and_collects() {
        let mb = IoMailbox::new().expect("mailbox");
        let (client, server) = loopback_pair();
        mb.deliver(server);
        let ep = sys::Epoll::new().expect("epoll");
        ep.add(mb.wake.fd(), WAKE_TOKEN, sys::EPOLLIN).expect("add");
        let mut events = vec![sys::EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut events, 1000), 1);
        let mut streams = Vec::new();
        mb.collect(&mut streams);
        assert_eq!(streams.len(), 1);
        drop(client);
    }
}
