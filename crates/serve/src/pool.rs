//! Shared-weight session pooling: one inference network serving the
//! decision windows of many sessions in a single batched forward.
//!
//! Sessions built from the same Hello triple `(model, seed, fast)` with a
//! *frozen* agent have bit-identical inference weights — they were
//! constructed from the same seed and never train — so a shard worker can
//! stack their prepared window states into one matrix and take one
//! `Mlp::forward_batch` for all of them. The batch kernels preserve
//! per-element accumulation order (each output row depends only on its
//! input row), so every session's Q rows are bit-identical to a forward
//! through its own network: pooling changes throughput, never decisions.
//!
//! The pool itself is worker-local (no locks): a tiny LRU of cloned
//! inference networks keyed by [`SessionKey`], plus the reusable batch
//! scratch for each. Per-session learned state never enters the pool —
//! only the frozen weights are shared.
//!
//! This file is on the decision hot path (`panic-in-hot-path` scope): no
//! panics, no literal indexing.

use crate::session::SessionModel;
use resemble_nn::{BatchScratch, Matrix, Mlp, QuantizedMlp};

/// How a session's model was constructed: the Hello triple. Frozen
/// sessions with equal keys have bit-identical, never-changing inference
/// weights, which is what makes cross-session batching exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionKey {
    /// Model registry name.
    pub model: String,
    /// Model seed.
    pub seed: u64,
    /// Fast (laptop-scale) configuration flag.
    pub fast: bool,
}

struct PoolEntry {
    key: SessionKey,
    net: Mlp,
    scratch: BatchScratch,
    /// Int8 copy of `net`, built once per entry when the pool runs in
    /// quantized mode (`--quantize-frozen`); `None` in f32 mode.
    qnet: Option<QuantizedMlp>,
    last_used: u64,
}

/// A worker-local cache of frozen inference networks keyed by
/// [`SessionKey`], evicting least-recently-used entries beyond `cap`.
///
/// In quantized mode each entry additionally caches a per-row symmetric
/// int8 copy of the frozen weights ([`QuantizedMlp`]) and pooled windows
/// forward through it — the opt-in `--quantize-frozen` serving datapath.
/// Quantized decisions are deterministic (bit-identical across backends
/// and reruns) but are *not* bit-identical to the f32 path; the measured
/// decision-agreement delta is reported by `serve_bench`.
pub struct WeightPool {
    entries: Vec<PoolEntry>,
    tick: u64,
    cap: usize,
    quantize: bool,
}

impl WeightPool {
    /// An empty pool holding at most `cap` distinct networks.
    pub fn new(cap: usize) -> Self {
        Self {
            entries: Vec::new(),
            tick: 0,
            cap: cap.max(1),
            quantize: false,
        }
    }

    /// Switch the pool into (or out of) int8 quantized mode. Existing
    /// entries are dropped so every cached network matches the mode.
    pub fn quantized(mut self, on: bool) -> Self {
        self.quantize = on;
        self.entries.clear();
        self
    }

    /// `true` when pooled forwards run through the int8 datapath.
    pub fn quantize_enabled(&self) -> bool {
        self.quantize
    }

    /// Distinct networks currently pooled.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no network is pooled yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// One pooled batched forward: push `states` (stacked prepared window
    /// rows of any number of same-key sessions) through the network cached
    /// for `key`, cloning it from `template`'s frozen inference net on
    /// first use, and copy the Q rows into `q`. Returns `false` — leaving
    /// `q` untouched — when `template` has no poolable network or its
    /// input width does not match `states`; callers then fall back to
    /// per-session forwards.
    pub fn forward_into(
        &mut self,
        key: &SessionKey,
        template: &SessionModel,
        states: &Matrix,
        q: &mut Matrix,
    ) -> bool {
        let at = match self.entries.iter().position(|e| e.key == *key) {
            Some(at) => at,
            None => {
                let Some(net) = template.inference_net() else {
                    return false;
                };
                if self.entries.len() >= self.cap {
                    // Evict the least-recently-used entry.
                    if let Some(lru) = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(i, _)| i)
                    {
                        self.entries.swap_remove(lru);
                    }
                }
                self.entries.push(PoolEntry {
                    key: key.clone(),
                    net: net.clone(),
                    scratch: BatchScratch::default(),
                    qnet: self.quantize.then(|| QuantizedMlp::from_mlp(net)),
                    last_used: 0,
                });
                self.entries.len() - 1
            }
        };
        self.tick += 1;
        let Some(entry) = self.entries.get_mut(at) else {
            return false;
        };
        entry.last_used = self.tick;
        // Checked before forwarding: `QuantizedMlp::forward_into` (like
        // `forward_batch`) asserts the input width, and this file's
        // no-panic contract routes mismatches to the per-session
        // fallback instead.
        if entry.net.input_dim() != states.cols() {
            return false;
        }
        if let Some(qnet) = entry.qnet.as_mut() {
            qnet.forward_into(states, q);
            return true;
        }
        let out = entry.net.forward_batch(states, &mut entry.scratch);
        q.resize(out.rows(), out.cols());
        q.as_mut_slice().copy_from_slice(out.as_slice());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(model: &str, seed: u64) -> SessionKey {
        SessionKey {
            model: model.to_string(),
            seed,
            fast: true,
        }
    }

    fn frozen_session(seed: u64) -> SessionModel {
        SessionModel::build("resemble_frozen", seed, true).expect("builds")
    }

    #[test]
    fn pooled_forward_matches_own_network_bitwise() {
        let template = frozen_session(7);
        let own = template.inference_net().expect("frozen mlp").clone();
        let mut pool = WeightPool::new(4);
        let dim = own.input_dim();
        let states = Matrix::from_fn(9, dim, |r, c| ((r * dim + c) as f32 * 0.37).sin());
        let mut q = Matrix::default();
        assert!(pool.forward_into(&key("resemble_frozen", 7), &template, &states, &mut q));
        let mut scratch = BatchScratch::default();
        let expect = own.forward_batch(&states, &mut scratch);
        assert_eq!(q.rows(), expect.rows());
        let qa: Vec<u32> = q.as_slice().iter().map(|v| v.to_bits()).collect();
        let qb: Vec<u32> = expect.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(qa, qb, "pooled Q rows diverged from own-net forward");
        assert_eq!(pool.len(), 1);
        // Second call reuses the cached entry.
        let mut q2 = Matrix::default();
        assert!(pool.forward_into(&key("resemble_frozen", 7), &template, &states, &mut q2));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn distinct_keys_get_distinct_entries_with_lru_eviction() {
        let mut pool = WeightPool::new(2);
        let mut q = Matrix::default();
        for seed in [1u64, 2, 3] {
            let t = frozen_session(seed);
            let dim = t.inference_net().expect("mlp").input_dim();
            let states = Matrix::from_fn(2, dim, |_, c| c as f32 * 0.1);
            assert!(pool.forward_into(&key("resemble_frozen", seed), &t, &states, &mut q));
        }
        assert_eq!(pool.len(), 2, "capacity bound holds");
    }

    #[test]
    fn non_poolable_template_is_rejected() {
        let template = SessionModel::build("bo", 1, true).expect("builds");
        let mut pool = WeightPool::new(2);
        let states = Matrix::from_fn(1, 4, |_, _| 0.0);
        let mut q = Matrix::default();
        assert!(!pool.forward_into(&key("bo", 1), &template, &states, &mut q));
        assert!(pool.is_empty());
    }

    #[test]
    fn quantized_pool_is_deterministic_and_tracks_f32_decisions() {
        let template = frozen_session(11);
        let own = template.inference_net().expect("frozen mlp");
        let dim = own.input_dim();
        let states = Matrix::from_fn(16, dim, |r, c| ((r * dim + c) as f32 * 0.21).cos());
        let k = key("resemble_frozen", 11);

        let mut f32_pool = WeightPool::new(4);
        let mut qf = Matrix::default();
        assert!(f32_pool.forward_into(&k, &template, &states, &mut qf));

        let mut qpool = WeightPool::new(4).quantized(true);
        assert!(qpool.quantize_enabled());
        let mut q1 = Matrix::default();
        assert!(qpool.forward_into(&k, &template, &states, &mut q1));
        assert_eq!(q1.rows(), qf.rows());
        assert_eq!(q1.cols(), qf.cols());

        // Deterministic: a second pooled call reproduces the bytes.
        let mut q2 = Matrix::default();
        assert!(qpool.forward_into(&k, &template, &states, &mut q2));
        let b1: Vec<u32> = q1.as_slice().iter().map(|v| v.to_bits()).collect();
        let b2: Vec<u32> = q2.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(b1, b2, "quantized pooled forward is not deterministic");

        // Decisions track the f32 path closely (quantization noise may
        // flip rare near-ties; on these stock weights it should not).
        let argmax = |m: &Matrix, r: usize| {
            let row = m.row(r);
            let mut best = 0;
            for (i, v) in row.iter().enumerate() {
                if *v > row[best] {
                    best = i;
                }
            }
            best
        };
        let agree = (0..qf.rows())
            .filter(|&r| argmax(&qf, r) == argmax(&q1, r))
            .count();
        assert!(
            agree * 10 >= qf.rows() * 9,
            "quantized decisions agree on only {agree}/{} rows",
            qf.rows()
        );
    }

    #[test]
    fn quantized_builder_clears_cached_entries() {
        let template = frozen_session(3);
        let dim = template.inference_net().expect("mlp").input_dim();
        let states = Matrix::from_fn(2, dim, |_, c| c as f32 * 0.05);
        let mut pool = WeightPool::new(4);
        let mut q = Matrix::default();
        assert!(pool.forward_into(&key("resemble_frozen", 3), &template, &states, &mut q));
        assert_eq!(pool.len(), 1);
        let pool = pool.quantized(true);
        assert!(pool.is_empty(), "mode switch must drop stale-mode entries");
    }

    #[test]
    fn mismatched_state_width_is_rejected() {
        let template = frozen_session(5);
        let mut pool = WeightPool::new(2);
        let mut q = Matrix::default();
        let bad_states = Matrix::from_fn(3, 1, |_, _| 0.5);
        assert!(!pool.forward_into(&key("resemble_frozen", 5), &template, &bad_states, &mut q));
    }
}
