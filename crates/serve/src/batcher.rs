//! Microbatch formation: turning a session's queued commands into a
//! drain plan of decision runs, events, and expired requests.
//!
//! A shard worker calls [`drain_session`] under the shard lock (it only
//! moves queue entries — no model work, no I/O), then executes the plan
//! with the lock released. The plan preserves the queue's stream order
//! exactly: consecutive accesses coalesce into *runs* (each run becomes
//! one batched decision window), cache events split runs because they
//! must be applied to the model between the accesses they arrived
//! between, and requests whose deadline already passed are pulled out for
//! `TimedOut` replies without touching the model. This file is on the
//! decision hot path (`panic-in-hot-path` scope): no panics, no literal
//! indexing.

use crate::protocol::EventKind;
use resemble_trace::MemAccess;
use std::collections::VecDeque;
use std::time::Instant;

/// A queued decision request.
#[derive(Debug, Clone)]
pub struct AccessReq {
    /// Client correlation id, echoed in the reply.
    pub req_id: u32,
    /// The access to decide on.
    pub access: MemAccess,
    /// Whether it hit in the client's cache.
    pub hit: bool,
    /// When the reader enqueued it (latency measurement origin).
    pub enqueued: Instant,
    /// Absolute expiry; `None` means no deadline.
    pub deadline: Option<Instant>,
}

/// One queued command of a session, in stream order.
#[derive(Debug, Clone)]
pub enum SessionCmd {
    /// A decision request.
    Access(AccessReq),
    /// Cache feedback to apply between accesses.
    Event {
        /// What happened.
        kind: EventKind,
        /// Block-aligned byte address.
        addr: u64,
    },
    /// End of session: flush, reply Goodbye, drop the model.
    Bye,
}

/// One step of a drain plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanOp {
    /// Decide `plan.run[start..start + len]` in one batched window.
    Run {
        /// First index into [`DrainPlan::run`].
        start: usize,
        /// Number of consecutive accesses in the window.
        len: usize,
    },
    /// Apply one cache event to the model.
    Event {
        /// What happened.
        kind: EventKind,
        /// Block-aligned byte address.
        addr: u64,
    },
}

/// The result of draining one session's queue: ordered ops over the
/// accesses collected in `run`, plus the expired requests and whether the
/// session said goodbye. Reused across drains (all `Vec`s are cleared,
/// capacity kept).
#[derive(Debug, Default)]
pub struct DrainPlan {
    /// Ordered steps referencing `run` by range.
    pub ops: Vec<PlanOp>,
    /// Backing storage for every live access drained, in stream order.
    pub run: Vec<AccessReq>,
    /// Requests whose deadline passed while queued (never reach the model).
    pub timed_out: Vec<AccessReq>,
    /// The session's `Bye` was reached.
    pub saw_bye: bool,
}

impl DrainPlan {
    /// An empty reusable plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset for the next drain, keeping allocations.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.run.clear();
        self.timed_out.clear();
        self.saw_bye = false;
    }

    /// Nothing was drained.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty() && self.timed_out.is_empty() && !self.saw_bye
    }
}

/// Drain up to `max_accesses` live decision requests (plus any number of
/// interleaved events) from the front of `queue` into `plan`. Entries
/// past the cutoff stay queued for the next visit; everything up to and
/// including a `Bye` is consumed when one is reached first.
pub fn drain_session(
    queue: &mut VecDeque<SessionCmd>,
    max_accesses: usize,
    now: Instant,
    plan: &mut DrainPlan,
) {
    plan.clear();
    let max = max_accesses.max(1);
    let mut run_start = 0usize;
    loop {
        if plan.run.len() >= max {
            break;
        }
        let Some(cmd) = queue.pop_front() else { break };
        match cmd {
            SessionCmd::Access(req) => {
                if req.deadline.is_some_and(|d| d <= now) {
                    plan.timed_out.push(req);
                } else {
                    plan.run.push(req);
                }
            }
            SessionCmd::Event { kind, addr } => {
                if plan.run.len() > run_start {
                    plan.ops.push(PlanOp::Run {
                        start: run_start,
                        len: plan.run.len() - run_start,
                    });
                    run_start = plan.run.len();
                }
                plan.ops.push(PlanOp::Event { kind, addr });
            }
            SessionCmd::Bye => {
                plan.saw_bye = true;
                break;
            }
        }
    }
    if plan.run.len() > run_start {
        plan.ops.push(PlanOp::Run {
            start: run_start,
            len: plan.run.len() - run_start,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn req(id: u32, deadline: Option<Instant>) -> SessionCmd {
        SessionCmd::Access(AccessReq {
            req_id: id,
            access: MemAccess::load(u64::from(id), 0x400, 0x1000 + u64::from(id) * 64),
            hit: false,
            enqueued: Instant::now(),
            deadline,
        })
    }

    fn run_ids(plan: &DrainPlan) -> Vec<u32> {
        plan.run.iter().map(|r| r.req_id).collect()
    }

    #[test]
    fn coalesces_consecutive_accesses_into_one_run() {
        let mut q: VecDeque<SessionCmd> = (0..5).map(|i| req(i, None)).collect();
        let mut plan = DrainPlan::new();
        drain_session(&mut q, 64, Instant::now(), &mut plan);
        assert_eq!(plan.ops, vec![PlanOp::Run { start: 0, len: 5 }]);
        assert_eq!(run_ids(&plan), vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
        assert!(!plan.saw_bye);
    }

    #[test]
    fn respects_max_accesses_and_leaves_the_rest() {
        let mut q: VecDeque<SessionCmd> = (0..10).map(|i| req(i, None)).collect();
        let mut plan = DrainPlan::new();
        drain_session(&mut q, 4, Instant::now(), &mut plan);
        assert_eq!(run_ids(&plan), vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 6);
        drain_session(&mut q, 4, Instant::now(), &mut plan);
        assert_eq!(run_ids(&plan), vec![4, 5, 6, 7]);
    }

    #[test]
    fn events_split_runs_in_stream_order() {
        let mut q = VecDeque::new();
        q.push_back(req(0, None));
        q.push_back(req(1, None));
        q.push_back(SessionCmd::Event {
            kind: EventKind::DemandFill,
            addr: 0x40,
        });
        q.push_back(req(2, None));
        let mut plan = DrainPlan::new();
        drain_session(&mut q, 64, Instant::now(), &mut plan);
        assert_eq!(
            plan.ops,
            vec![
                PlanOp::Run { start: 0, len: 2 },
                PlanOp::Event {
                    kind: EventKind::DemandFill,
                    addr: 0x40
                },
                PlanOp::Run { start: 2, len: 1 },
            ]
        );
    }

    #[test]
    fn expired_requests_are_pulled_without_breaking_the_run() {
        let now = Instant::now();
        let past = now.checked_sub(Duration::from_millis(5));
        let future = now.checked_add(Duration::from_secs(60));
        let mut q = VecDeque::new();
        q.push_back(req(0, future));
        q.push_back(req(1, past)); // expired in queue
        q.push_back(req(2, None));
        let mut plan = DrainPlan::new();
        drain_session(&mut q, 64, now, &mut plan);
        assert_eq!(run_ids(&plan), vec![0, 2]);
        assert_eq!(
            plan.timed_out.iter().map(|r| r.req_id).collect::<Vec<_>>(),
            vec![1]
        );
        // The two live accesses still batch as one contiguous run.
        assert_eq!(plan.ops, vec![PlanOp::Run { start: 0, len: 2 }]);
    }

    #[test]
    fn bye_terminates_the_drain() {
        let mut q = VecDeque::new();
        q.push_back(req(0, None));
        q.push_back(SessionCmd::Bye);
        let mut plan = DrainPlan::new();
        drain_session(&mut q, 64, Instant::now(), &mut plan);
        assert!(plan.saw_bye);
        assert_eq!(plan.ops, vec![PlanOp::Run { start: 0, len: 1 }]);
        assert!(q.is_empty());
    }

    #[test]
    fn empty_queue_drains_to_empty_plan() {
        let mut q = VecDeque::new();
        let mut plan = DrainPlan::new();
        drain_session(&mut q, 8, Instant::now(), &mut plan);
        assert!(plan.is_empty());
    }
}
