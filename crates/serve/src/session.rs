//! Per-session model state: what a connected client's access stream is
//! served by, and how a drained run of requests is applied to it.
//!
//! One connection is one session is one model instance — sessions never
//! share learned state, which is what makes served decisions bit-identical
//! to an offline run of the same stream no matter how the scheduler
//! interleaves sessions. The [`ResembleMlp`] controller gets the batched
//! decision-window path ([`ResembleMlp::on_access_window`], one
//! `forward_batch` per window); every other prefetcher runs its ordinary
//! sequential `on_access` loop.

use crate::protocol::EventKind;
use resemble_core::{ResembleConfig, ResembleMlp};
use resemble_prefetch::{paper_bank, BestOffset, Prefetcher, Spp, Streamer, StridePrefetcher};
use resemble_trace::MemAccess;
use std::sync::Arc;

/// The model a session's requests are applied to.
pub enum SessionModel {
    /// The DQN ensemble controller, served through the batched
    /// decision-window path.
    Mlp(Box<ResembleMlp>),
    /// Any other prefetcher, served sequentially.
    Boxed(Box<dyn Prefetcher + Send>),
}

/// Builds a [`SessionModel`] from a Hello's `(model, seed, fast)` triple.
/// The server takes one of these so binaries can widen the registry (the
/// bench `serve` bin plugs in the full factory) without this crate
/// depending on them.
pub type ModelBuilder = Arc<dyn Fn(&str, u64, bool) -> Result<SessionModel, String> + Send + Sync>;

impl SessionModel {
    /// The built-in registry: the two ReSemble serving configurations plus
    /// a few cheap classical prefetchers for tests and load generation.
    pub fn build(model: &str, seed: u64, fast: bool) -> Result<SessionModel, String> {
        let cfg = if fast {
            ResembleConfig::fast()
        } else {
            ResembleConfig::default()
        };
        Ok(match model {
            "resemble" => SessionModel::Mlp(Box::new(ResembleMlp::new(paper_bank(), cfg, seed))),
            "resemble_frozen" => {
                // Deployment-style serving: inference only, no online
                // training, so decision windows are unbounded.
                let mut m = ResembleMlp::new(paper_bank(), cfg, seed);
                m.agent_mut().frozen = true;
                SessionModel::Mlp(Box::new(m))
            }
            "bo" => SessionModel::Boxed(Box::new(BestOffset::new())),
            "spp" => SessionModel::Boxed(Box::new(Spp::new())),
            "stride" => SessionModel::Boxed(Box::new(StridePrefetcher::default())),
            "streamer" => SessionModel::Boxed(Box::new(Streamer::default())),
            other => return Err(format!("unknown model '{other}'")),
        })
    }

    /// The default [`ModelBuilder`] wrapping [`SessionModel::build`].
    pub fn default_builder() -> ModelBuilder {
        Arc::new(SessionModel::build)
    }

    fn prefetcher_mut(&mut self) -> &mut (dyn Prefetcher + Send) {
        match self {
            SessionModel::Mlp(m) => &mut **m,
            SessionModel::Boxed(b) => &mut **b,
        }
    }

    /// Apply a run of consecutive accesses, calling
    /// `emit(index_in_run, issued_prefetches)` once per access in order.
    pub fn on_run(&mut self, accesses: &[(MemAccess, bool)], mut emit: impl FnMut(usize, &[u64])) {
        match self {
            SessionModel::Mlp(m) => m.on_access_window(accesses, emit),
            SessionModel::Boxed(b) => {
                let mut out = Vec::new();
                for (k, (access, hit)) in accesses.iter().enumerate() {
                    out.clear();
                    b.on_access(access, *hit, &mut out);
                    emit(k, &out);
                }
            }
        }
    }

    /// Apply one cache-feedback event in stream order.
    pub fn on_event(&mut self, kind: EventKind, addr: u64) {
        let p = self.prefetcher_mut();
        match kind {
            EventKind::PrefetchFill => p.on_prefetch_fill(addr),
            EventKind::DemandFill => p.on_demand_fill(addr),
            EventKind::Evict { unused_prefetch } => p.on_evict(addr, unused_prefetch),
        }
    }

    /// Bit patterns of the controller's network parameters, if this model
    /// has any (the determinism tests compare these across serving paths).
    pub fn param_bits(&self) -> Option<Vec<u32>> {
        match self {
            SessionModel::Mlp(m) => Some(m.agent().param_bits()),
            SessionModel::Boxed(_) => None,
        }
    }
}

/// Offline reference run: the plain sequential `Prefetcher::on_access`
/// loop over a trace, returning the issued prefetches per access. This is
/// the ground truth the loopback bit-identity tests compare served
/// decisions against.
pub fn offline_decisions(model: &mut SessionModel, trace: &[(MemAccess, bool)]) -> Vec<Vec<u64>> {
    let p = model.prefetcher_mut();
    let mut out = Vec::new();
    let mut decisions = Vec::with_capacity(trace.len());
    for (access, hit) in trace {
        out.clear();
        p.on_access(access, *hit, &mut out);
        decisions.push(out.clone());
    }
    decisions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(n: u64) -> Vec<(MemAccess, bool)> {
        (0..n)
            .map(|i| {
                (
                    MemAccess::load(i, 0x400 + (i % 7) * 4, 0x10_0000 + i * 64),
                    i % 3 == 0,
                )
            })
            .collect()
    }

    #[test]
    fn registry_builds_known_models_and_rejects_unknown() {
        for name in [
            "resemble",
            "resemble_frozen",
            "bo",
            "spp",
            "stride",
            "streamer",
        ] {
            assert!(SessionModel::build(name, 1, true).is_ok(), "{name}");
        }
        let err = SessionModel::build("nope", 1, true).err().expect("unknown");
        assert!(err.contains("nope"));
    }

    #[test]
    fn run_matches_offline_for_boxed_models() {
        let t = trace(200);
        let mut offline = SessionModel::build("bo", 7, true).expect("builds");
        let expect = offline_decisions(&mut offline, &t);
        let mut served = SessionModel::build("bo", 7, true).expect("builds");
        let mut got: Vec<Vec<u64>> = Vec::new();
        for chunk in t.chunks(13) {
            served.on_run(chunk, |_, issued| got.push(issued.to_vec()));
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn run_matches_offline_for_mlp_models() {
        let t = trace(300);
        let mut offline = SessionModel::build("resemble", 11, true).expect("builds");
        let expect = offline_decisions(&mut offline, &t);
        let mut served = SessionModel::build("resemble", 11, true).expect("builds");
        let mut got: Vec<Vec<u64>> = Vec::new();
        for chunk in t.chunks(37) {
            served.on_run(chunk, |_, issued| got.push(issued.to_vec()));
        }
        assert_eq!(got, expect);
        assert_eq!(served.param_bits(), offline.param_bits());
        assert!(served.param_bits().is_some());
    }

    #[test]
    fn events_dispatch_without_error() {
        let mut m = SessionModel::build("resemble", 3, true).expect("builds");
        m.on_event(EventKind::PrefetchFill, 0x1000);
        m.on_event(EventKind::DemandFill, 0x1040);
        m.on_event(
            EventKind::Evict {
                unused_prefetch: true,
            },
            0x1000,
        );
        let mut issued = 0usize;
        m.on_run(&trace(5), |_, p| issued += p.len());
        let _ = issued;
    }
}
