//! Per-session model state: what a connected client's access stream is
//! served by, and how a drained run of requests is applied to it.
//!
//! One connection is one session is one model instance — sessions never
//! share learned state, which is what makes served decisions bit-identical
//! to an offline run of the same stream no matter how the scheduler
//! interleaves sessions. The [`ResembleMlp`] controller gets the batched
//! decision-window path ([`ResembleMlp::on_access_window`], one
//! `forward_batch` per window); every other prefetcher runs its ordinary
//! sequential `on_access` loop.

use crate::protocol::EventKind;
use resemble_core::{ResembleConfig, ResembleMlp};
use resemble_nn::{Matrix, Mlp};
use resemble_prefetch::{paper_bank, BestOffset, Prefetcher, Spp, Streamer, StridePrefetcher};
use resemble_trace::MemAccess;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The model a session's requests are applied to.
pub enum SessionModel {
    /// The DQN ensemble controller, served through the batched
    /// decision-window path.
    Mlp(Box<ResembleMlp>),
    /// Any other prefetcher, served sequentially.
    Boxed(Box<dyn Prefetcher + Send>),
}

/// Builds a [`SessionModel`] from a Hello's `(model, seed, fast)` triple.
/// The server takes one of these so binaries can widen the registry (the
/// bench `serve` bin plugs in the full factory) without this crate
/// depending on them.
pub type ModelBuilder = Arc<dyn Fn(&str, u64, bool) -> Result<SessionModel, String> + Send + Sync>;

impl SessionModel {
    /// The built-in registry: the two ReSemble serving configurations plus
    /// a few cheap classical prefetchers for tests and load generation.
    pub fn build(model: &str, seed: u64, fast: bool) -> Result<SessionModel, String> {
        let cfg = if fast {
            ResembleConfig::fast()
        } else {
            ResembleConfig::default()
        };
        Ok(match model {
            "resemble" => SessionModel::Mlp(Box::new(ResembleMlp::new(paper_bank(), cfg, seed))),
            "resemble_frozen" => {
                // Deployment-style serving: inference only, no online
                // training, so decision windows are unbounded.
                let mut m = ResembleMlp::new(paper_bank(), cfg, seed);
                m.agent_mut().frozen = true;
                SessionModel::Mlp(Box::new(m))
            }
            "resemble_frozen_wide" => {
                // Serving stress configuration: the frozen inference path
                // with a Voyager-class 1024-wide hidden layer, so the
                // per-decision cost is dominated by the forward GEMM
                // (what cross-session pooling amortizes) rather than by
                // the paper's hardware-scale 100-wide controller.
                let mut cfg = cfg;
                cfg.hidden_dim = 1024;
                let mut m = ResembleMlp::new(paper_bank(), cfg, seed);
                m.agent_mut().frozen = true;
                SessionModel::Mlp(Box::new(m))
            }
            "bo" => SessionModel::Boxed(Box::new(BestOffset::new())),
            "spp" => SessionModel::Boxed(Box::new(Spp::new())),
            "stride" => SessionModel::Boxed(Box::new(StridePrefetcher::default())),
            "streamer" => SessionModel::Boxed(Box::new(Streamer::default())),
            other => return Err(format!("unknown model '{other}'")),
        })
    }

    /// The default [`ModelBuilder`] wrapping [`SessionModel::build`].
    pub fn default_builder() -> ModelBuilder {
        Arc::new(SessionModel::build)
    }

    fn prefetcher_mut(&mut self) -> &mut (dyn Prefetcher + Send) {
        match self {
            SessionModel::Mlp(m) => &mut **m,
            SessionModel::Boxed(b) => &mut **b,
        }
    }

    /// Apply a run of consecutive accesses, calling
    /// `emit(index_in_run, issued_prefetches)` once per access in order.
    pub fn on_run(&mut self, accesses: &[(MemAccess, bool)], mut emit: impl FnMut(usize, &[u64])) {
        match self {
            SessionModel::Mlp(m) => m.on_access_window(accesses, emit),
            SessionModel::Boxed(b) => {
                let mut out = Vec::new();
                for (k, (access, hit)) in accesses.iter().enumerate() {
                    out.clear();
                    b.on_access(access, *hit, &mut out);
                    emit(k, &out);
                }
            }
        }
    }

    /// Apply one cache-feedback event in stream order.
    pub fn on_event(&mut self, kind: EventKind, addr: u64) {
        let p = self.prefetcher_mut();
        match kind {
            EventKind::PrefetchFill => p.on_prefetch_fill(addr),
            EventKind::DemandFill => p.on_demand_fill(addr),
            EventKind::Evict { unused_prefetch } => p.on_evict(addr, unused_prefetch),
        }
    }

    /// Bit patterns of the controller's network parameters, if this model
    /// has any (the determinism tests compare these across serving paths).
    pub fn param_bits(&self) -> Option<Vec<u32>> {
        match self {
            SessionModel::Mlp(m) => Some(m.agent().param_bits()),
            SessionModel::Boxed(_) => None,
        }
    }

    /// `true` when this session can join a cross-session pooled window:
    /// an MLP controller whose agent is frozen, so its inference weights
    /// are a pure function of the Hello triple and never change.
    pub fn pool_eligible(&self) -> bool {
        matches!(self, SessionModel::Mlp(m) if m.is_frozen())
    }

    /// The controller's inference network, used to seed a shared-weight
    /// pool entry. `None` for non-MLP sessions.
    pub fn inference_net(&self) -> Option<&Mlp> {
        match self {
            SessionModel::Mlp(m) => Some(m.agent().inference_net()),
            SessionModel::Boxed(_) => None,
        }
    }

    /// Phase A of a pooled decision window: feed the run through the
    /// prefetcher bank and capture per-access MLP states. Returns the
    /// state matrix (one row per access), or `None` for non-MLP sessions.
    /// Every `window_prepare` must be followed by exactly one
    /// [`SessionModel::window_commit`] over the same run.
    pub fn window_prepare(&mut self, accesses: &[(MemAccess, bool)]) -> Option<&Matrix> {
        match self {
            SessionModel::Mlp(m) => Some(m.window_prepare(accesses)),
            SessionModel::Boxed(_) => None,
        }
    }

    /// Phase B fallback: forward the states captured by the last
    /// [`SessionModel::window_prepare`] through the session's *own*
    /// inference net into `q` (bit-identical to the pooled forward).
    pub fn window_forward(&mut self, q: &mut Matrix) {
        if let SessionModel::Mlp(m) = self {
            m.window_forward(q);
        }
    }

    /// Phase C of a pooled decision window: consume Q rows
    /// `row0..row0 + run.len()` of `q` and commit rewards, action
    /// selection, replay, and emissions exactly as the fused
    /// [`ResembleMlp::on_access_window`] would.
    pub fn window_commit(
        &mut self,
        accesses: &[(MemAccess, bool)],
        q: &Matrix,
        row0: usize,
        emit: impl FnMut(usize, &[u64]),
    ) {
        if let SessionModel::Mlp(m) = self {
            m.window_commit(accesses, q, row0, emit);
        }
    }

    /// Serialize the controller's learned state. Returns `Ok(false)` for
    /// sessions with nothing to checkpoint (non-MLP models).
    pub fn save_checkpoint<W: io::Write>(&self, w: &mut W) -> io::Result<bool> {
        match self {
            SessionModel::Mlp(m) => m.save_checkpoint(w).map(|()| true),
            SessionModel::Boxed(_) => Ok(false),
        }
    }

    /// Restore controller state written by
    /// [`SessionModel::save_checkpoint`]. Returns `Ok(false)` for models
    /// with nothing to restore.
    pub fn load_checkpoint<R: io::Read>(&mut self, r: &mut R) -> io::Result<bool> {
        match self {
            SessionModel::Mlp(m) => m.load_checkpoint(r).map(|()| true),
            SessionModel::Boxed(_) => Ok(false),
        }
    }
}

/// The checkpoint file a `(model, seed, fast)` session maps to under
/// `dir`. The model name is sanitized to a filename-safe alphabet so an
/// adversarial Hello cannot traverse out of the checkpoint directory.
pub fn checkpoint_path(dir: &Path, model: &str, seed: u64, fast: bool) -> PathBuf {
    let safe: String = model
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!("{safe}-{seed}-{}.ckpt", u8::from(fast)))
}

/// Best-effort atomic save of a session's controller state under `dir`
/// (temp file + rename, so readers never observe a torn checkpoint).
/// `nonce` disambiguates concurrent writers of the same key — use the
/// session id. Returns `true` only when a checkpoint was durably written.
pub fn save_checkpoint_file(
    dir: &Path,
    model: &str,
    seed: u64,
    fast: bool,
    nonce: u64,
    session: &SessionModel,
) -> bool {
    let mut buf = Vec::new();
    match session.save_checkpoint(&mut buf) {
        Ok(true) => {}
        _ => return false,
    }
    if fs::create_dir_all(dir).is_err() {
        return false;
    }
    let path = checkpoint_path(dir, model, seed, fast);
    let tmp = dir.join(format!(".{nonce}.ckpt.tmp"));
    if fs::write(&tmp, &buf).is_err() {
        let _ = fs::remove_file(&tmp);
        return false;
    }
    if fs::rename(&tmp, &path).is_err() {
        let _ = fs::remove_file(&tmp);
        return false;
    }
    true
}

/// Warm-start a freshly built session from its checkpoint file, if one
/// exists and matches the session's architecture. Returns `true` when
/// state was restored; on any error the session is left cold (a fresh
/// build), never half-restored.
pub fn load_checkpoint_file(
    dir: &Path,
    model: &str,
    seed: u64,
    fast: bool,
    session: &mut SessionModel,
) -> bool {
    let path = checkpoint_path(dir, model, seed, fast);
    let Ok(bytes) = fs::read(&path) else {
        return false;
    };
    matches!(session.load_checkpoint(&mut bytes.as_slice()), Ok(true))
}

/// Offline reference run: the plain sequential `Prefetcher::on_access`
/// loop over a trace, returning the issued prefetches per access. This is
/// the ground truth the loopback bit-identity tests compare served
/// decisions against.
pub fn offline_decisions(model: &mut SessionModel, trace: &[(MemAccess, bool)]) -> Vec<Vec<u64>> {
    let p = model.prefetcher_mut();
    let mut out = Vec::new();
    let mut decisions = Vec::with_capacity(trace.len());
    for (access, hit) in trace {
        out.clear();
        p.on_access(access, *hit, &mut out);
        decisions.push(out.clone());
    }
    decisions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(n: u64) -> Vec<(MemAccess, bool)> {
        (0..n)
            .map(|i| {
                (
                    MemAccess::load(i, 0x400 + (i % 7) * 4, 0x10_0000 + i * 64),
                    i % 3 == 0,
                )
            })
            .collect()
    }

    #[test]
    fn registry_builds_known_models_and_rejects_unknown() {
        for name in [
            "resemble",
            "resemble_frozen",
            "bo",
            "spp",
            "stride",
            "streamer",
        ] {
            assert!(SessionModel::build(name, 1, true).is_ok(), "{name}");
        }
        let err = SessionModel::build("nope", 1, true).err().expect("unknown");
        assert!(err.contains("nope"));
    }

    #[test]
    fn run_matches_offline_for_boxed_models() {
        let t = trace(200);
        let mut offline = SessionModel::build("bo", 7, true).expect("builds");
        let expect = offline_decisions(&mut offline, &t);
        let mut served = SessionModel::build("bo", 7, true).expect("builds");
        let mut got: Vec<Vec<u64>> = Vec::new();
        for chunk in t.chunks(13) {
            served.on_run(chunk, |_, issued| got.push(issued.to_vec()));
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn run_matches_offline_for_mlp_models() {
        let t = trace(300);
        let mut offline = SessionModel::build("resemble", 11, true).expect("builds");
        let expect = offline_decisions(&mut offline, &t);
        let mut served = SessionModel::build("resemble", 11, true).expect("builds");
        let mut got: Vec<Vec<u64>> = Vec::new();
        for chunk in t.chunks(37) {
            served.on_run(chunk, |_, issued| got.push(issued.to_vec()));
        }
        assert_eq!(got, expect);
        assert_eq!(served.param_bits(), offline.param_bits());
        assert!(served.param_bits().is_some());
    }

    #[test]
    fn events_dispatch_without_error() {
        let mut m = SessionModel::build("resemble", 3, true).expect("builds");
        m.on_event(EventKind::PrefetchFill, 0x1000);
        m.on_event(EventKind::DemandFill, 0x1040);
        m.on_event(
            EventKind::Evict {
                unused_prefetch: true,
            },
            0x1000,
        );
        let mut issued = 0usize;
        m.on_run(&trace(5), |_, p| issued += p.len());
        let _ = issued;
    }

    #[test]
    fn pool_eligibility_is_frozen_mlp_only() {
        assert!(SessionModel::build("resemble_frozen", 1, true)
            .expect("builds")
            .pool_eligible());
        assert!(!SessionModel::build("resemble", 1, true)
            .expect("builds")
            .pool_eligible());
        assert!(!SessionModel::build("bo", 1, true)
            .expect("builds")
            .pool_eligible());
    }

    #[test]
    fn checkpoint_file_round_trip_restores_learned_state() {
        let dir = std::env::temp_dir().join(format!(
            "resemble-ckpt-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let t = trace(400);
        let mut trained = SessionModel::build("resemble", 21, true).expect("builds");
        trained.on_run(&t, |_, _| {});
        assert!(save_checkpoint_file(
            &dir, "resemble", 21, true, 7, &trained
        ));
        let mut warm = SessionModel::build("resemble", 21, true).expect("builds");
        assert!(load_checkpoint_file(&dir, "resemble", 21, true, &mut warm));
        assert_eq!(warm.param_bits(), trained.param_bits());
        // Missing file leaves a fresh session cold.
        let mut cold = SessionModel::build("resemble", 22, true).expect("builds");
        assert!(!load_checkpoint_file(&dir, "resemble", 22, true, &mut cold));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_path_sanitizes_model_names() {
        let p = checkpoint_path(Path::new("/tmp/x"), "../evil/name", 3, false);
        let name = p.file_name().and_then(|n| n.to_str()).expect("name");
        assert_eq!(name, "___evil_name-3-0.ckpt");
        assert_eq!(p.parent(), Some(Path::new("/tmp/x")));
    }

    #[test]
    fn split_window_phases_match_fused_run() {
        let t = trace(120);
        let mut fused = SessionModel::build("resemble_frozen", 9, true).expect("builds");
        let mut expect: Vec<Vec<u64>> = Vec::new();
        for chunk in t.chunks(17) {
            fused.on_run(chunk, |_, issued| expect.push(issued.to_vec()));
        }
        let mut split = SessionModel::build("resemble_frozen", 9, true).expect("builds");
        let mut got: Vec<Vec<u64>> = Vec::new();
        let mut q = Matrix::default();
        for chunk in t.chunks(17) {
            assert!(split.window_prepare(chunk).is_some());
            split.window_forward(&mut q);
            split.window_commit(chunk, &q, 0, |_, issued| got.push(issued.to_vec()));
        }
        assert_eq!(got, expect);
        assert_eq!(split.param_bits(), fused.param_bits());
    }
}
