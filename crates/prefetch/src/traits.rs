//! The prefetcher interface shared by the zoo, the simulator, and the
//! ensemble framework.

use resemble_trace::MemAccess;
use serde::{Deserialize, Serialize};

/// Classification of a prefetcher's *output range*, which is what ReSemble's
/// preprocessing keys on (paper §IV-B): spatial predictions stay within a
/// page of the trigger and are encoded as normalized deltas; temporal
/// predictions range over the whole address space and are hashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictionKind {
    /// Predictions within a spatial region (page) of the trigger access.
    Spatial,
    /// Predictions anywhere in the address space.
    Temporal,
}

/// A cache-state change the simulator reports back to prefetchers:
/// fill completions and evictions at the prefetched level.
///
/// The simulator accumulates these per drain and delivers them in
/// occurrence order through [`Prefetcher::on_cache_events`], so a bank of
/// N members costs one virtual dispatch per member per batch instead of
/// one per member per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// A prefetched line arrived in the cache.
    PrefetchFill {
        /// Block-aligned byte address of the filled line.
        addr: u64,
    },
    /// A demand-missed line arrived in the cache (fill completion).
    DemandFill {
        /// Block-aligned byte address of the filled line.
        addr: u64,
    },
    /// A line was evicted to make room for a fill.
    Evict {
        /// Block-aligned byte address of the victim line.
        addr: u64,
        /// The victim was prefetched and never demanded (a wasted
        /// prefetch).
        unused_prefetch: bool,
    },
}

/// A hardware prefetcher observing the LLC access stream.
///
/// `on_access` is invoked for every demand access reaching the level the
/// prefetcher is attached to (the LLC in the paper's configuration),
/// with `hit` telling whether the access hit in that cache. Suggested
/// prefetch addresses are pushed into `out` (block-aligned byte addresses,
/// most-confident first); the caller clears `out` beforehand.
///
/// Fill/evict notifications arrive batched via
/// [`Prefetcher::on_cache_events`]; the default implementation fans each
/// batch out to the per-event hooks, so simple prefetchers only implement
/// those.
pub trait Prefetcher {
    /// Human-readable name ("bo", "spp", ...).
    fn name(&self) -> &'static str;

    /// Output-range classification used by ensemble preprocessing.
    fn kind(&self) -> PredictionKind;

    /// Observe a demand access and append prefetch suggestions to `out`.
    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<u64>);

    /// A prefetched line arrived in the cache.
    fn on_prefetch_fill(&mut self, _addr: u64) {}

    /// A demand-missed line arrived in the cache (fill completion). BO
    /// uses fill completions to score offset *timeliness*.
    fn on_demand_fill(&mut self, _addr: u64) {}

    /// A line was evicted; `unused_prefetch` marks a prefetched line that
    /// was never demanded (a wasted prefetch).
    fn on_evict(&mut self, _addr: u64, _unused_prefetch: bool) {}

    /// Batched delivery of fill/evict notifications in occurrence order.
    ///
    /// The simulator calls this once per fill-drain instead of invoking
    /// the per-event hooks directly. Override to process a whole batch at
    /// once (see [`PrefetcherBank::on_cache_events`]); the default simply
    /// dispatches each event to the matching per-event hook, preserving
    /// the exact call sequence a per-event simulator would produce.
    fn on_cache_events(&mut self, events: &[CacheEvent]) {
        for e in events {
            match *e {
                CacheEvent::PrefetchFill { addr } => self.on_prefetch_fill(addr),
                CacheEvent::DemandFill { addr } => self.on_demand_fill(addr),
                CacheEvent::Evict {
                    addr,
                    unused_prefetch,
                } => self.on_evict(addr, unused_prefetch),
            }
        }
    }

    /// Hardware storage budget in bytes (Table II).
    fn budget_bytes(&self) -> usize;

    /// Maximum number of suggestions per access this prefetcher emits.
    fn max_degree(&self) -> usize {
        1
    }

    /// Clear all learned state.
    fn reset(&mut self);
}

/// A bank of prefetchers feeding the ensemble: runs each member on every
/// access and exposes their top-1 suggestions as the observation vector
/// `o_t = [p_1(t), ..., p_N(t)]` (paper Eq. 4).
pub struct PrefetcherBank {
    members: Vec<Box<dyn Prefetcher + Send>>,
    all: Vec<Vec<u64>>,
    top: Vec<Option<u64>>,
}

impl PrefetcherBank {
    /// Build a bank from its member prefetchers.
    pub fn new(members: Vec<Box<dyn Prefetcher + Send>>) -> Self {
        assert!(!members.is_empty(), "bank needs at least one prefetcher");
        let n = members.len();
        Self {
            members,
            all: vec![Vec::new(); n],
            top: vec![None; n],
        }
    }

    /// Number of member prefetchers (the observation dimension N).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the bank has no members (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member access.
    pub fn member(&self, i: usize) -> &(dyn Prefetcher + Send) {
        &*self.members[i]
    }

    /// Kinds of all members, in order.
    pub fn kinds(&self) -> Vec<PredictionKind> {
        self.members.iter().map(|m| m.kind()).collect()
    }

    /// Names of all members, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.name()).collect()
    }

    /// Run every member on the access; returns the per-member top-1
    /// suggestions (`None` where a member had no prediction). The full
    /// per-member suggestion lists are kept and readable through
    /// [`PrefetcherBank::suggestions`] until the next `observe`.
    pub fn observe(&mut self, access: &MemAccess, hit: bool) -> &[Option<u64>] {
        for (i, m) in self.members.iter_mut().enumerate() {
            self.all[i].clear();
            m.on_access(access, hit, &mut self.all[i]);
            self.top[i] = self.all[i].first().copied();
        }
        &self.top
    }

    /// Full suggestion list of member `i` from the last `observe` call.
    ///
    /// The ensemble's *observation* is the top-1 vector (Eq. 4), but the
    /// selected *action* issues the chosen prefetcher's complete
    /// suggestion list — selecting SPP means running SPP's whole lookahead
    /// path, exactly as SPP standalone would.
    pub fn suggestions(&self, i: usize) -> &[u64] {
        &self.all[i]
    }

    /// Forward a prefetch-fill notification to every member.
    pub fn on_prefetch_fill(&mut self, addr: u64) {
        for m in &mut self.members {
            m.on_prefetch_fill(addr);
        }
    }

    /// Forward a demand-fill notification to every member.
    pub fn on_demand_fill(&mut self, addr: u64) {
        for m in &mut self.members {
            m.on_demand_fill(addr);
        }
    }

    /// Forward an eviction notification to every member.
    pub fn on_evict(&mut self, addr: u64, unused_prefetch: bool) {
        for m in &mut self.members {
            m.on_evict(addr, unused_prefetch);
        }
    }

    /// Forward a batch of cache events to every member: one dispatch per
    /// member per batch. Each member still observes the events in
    /// occurrence order.
    pub fn on_cache_events(&mut self, events: &[CacheEvent]) {
        for m in &mut self.members {
            m.on_cache_events(events);
        }
    }

    /// Total hardware budget of the bank.
    pub fn budget_bytes(&self) -> usize {
        self.members.iter().map(|m| m.budget_bytes()).sum()
    }

    /// Reset all members.
    pub fn reset(&mut self) {
        for m in &mut self.members {
            m.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Always suggests the next block.
    struct Fixed(u64);
    impl Prefetcher for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn kind(&self) -> PredictionKind {
            PredictionKind::Spatial
        }
        fn on_access(&mut self, access: &MemAccess, _hit: bool, out: &mut Vec<u64>) {
            out.push(access.addr.wrapping_add(self.0));
        }
        fn budget_bytes(&self) -> usize {
            0
        }
        fn reset(&mut self) {}
    }

    /// Never suggests.
    struct Mute;
    impl Prefetcher for Mute {
        fn name(&self) -> &'static str {
            "mute"
        }
        fn kind(&self) -> PredictionKind {
            PredictionKind::Temporal
        }
        fn on_access(&mut self, _: &MemAccess, _: bool, _: &mut Vec<u64>) {}
        fn budget_bytes(&self) -> usize {
            0
        }
        fn reset(&mut self) {}
    }

    #[test]
    fn bank_collects_top1_with_padding() {
        let mut bank = PrefetcherBank::new(vec![Box::new(Fixed(64)), Box::new(Mute)]);
        let a = MemAccess::load(0, 0x1, 0x1000);
        let obs = bank.observe(&a, false);
        assert_eq!(obs, &[Some(0x1040), None]);
        assert_eq!(bank.len(), 2);
        assert_eq!(
            bank.kinds(),
            vec![PredictionKind::Spatial, PredictionKind::Temporal]
        );
        assert_eq!(bank.names(), vec!["fixed", "mute"]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_bank_rejected() {
        let _ = PrefetcherBank::new(vec![]);
    }
}
