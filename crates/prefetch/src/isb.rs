//! Irregular Stream Buffer (ISB) — Jain & Lin, MICRO 2013.
//!
//! ISB linearizes irregular but *temporally repetitive* access sequences:
//! it assigns consecutive *structural* addresses to physical addresses that
//! appear consecutively in the same PC's access stream, maintained in two
//! address-mapping caches (PS-AMC: physical→structural, SP-AMC:
//! structural→physical). Prediction is then simply "prefetch the physical
//! addresses mapped at the next structural addresses". This is the paper's
//! canonical PC-localized temporal prefetcher.
//!
//! Configuration per Table II: 2K entries for each AMC, 8 KB.

use crate::bounded::BoundedMap;
use crate::traits::{PredictionKind, Prefetcher};
use resemble_trace::record::{block_addr, block_of};
use resemble_trace::MemAccess;

/// Structural stream granularity: new streams start at multiples of this.
const STREAM_LEN: u64 = 256;

/// Irregular Stream Buffer prefetcher.
#[derive(Debug, Clone)]
pub struct Isb {
    /// physical block → structural address
    ps: BoundedMap<u64>,
    /// structural address → physical block
    sp: BoundedMap<u64>,
    /// last physical block observed per PC (training units)
    last_per_pc: BoundedMap<u64>,
    next_stream: u64,
    degree: usize,
}

impl Isb {
    /// ISB with degree 2 and AMCs sized for off-chip metadata backing.
    ///
    /// Table II's 8 KB budget is the *on-chip cache* of the address
    /// mapping; like the original design (and STMS/Domino), the full
    /// mapping lives in main memory. We model the backed capacity
    /// directly so temporal replay works on LLC-sized footprints.
    pub fn new() -> Self {
        Self::with_params(1 << 19, 2)
    }

    /// Parameterized constructor (for ablations).
    pub fn with_params(amc_entries: usize, degree: usize) -> Self {
        assert!(degree >= 1);
        Self {
            ps: BoundedMap::new(amc_entries),
            sp: BoundedMap::new(amc_entries),
            last_per_pc: BoundedMap::new(1024),
            next_stream: 0,
            degree,
        }
    }

    fn alloc_stream(&mut self) -> u64 {
        let s = self.next_stream;
        self.next_stream += STREAM_LEN;
        s
    }

    /// Link block `b` as the occupant of structural address `s`.
    ///
    /// The SP direction is always updated so replay of the predecessor's
    /// stream reflects the latest observed successor; the PS direction
    /// keeps a block's *first* linearization (re-assigning it would cascade
    /// around cyclic sequences and destroy the stream every lap).
    fn link(&mut self, b: u64, s: u64) {
        self.sp.insert(s, b);
        if self.ps.get(b).is_none() {
            self.ps.insert(b, s);
        }
    }
}

impl Default for Isb {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Isb {
    fn name(&self) -> &'static str {
        "isb"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Temporal
    }

    fn on_access(&mut self, access: &MemAccess, _hit: bool, out: &mut Vec<u64>) {
        let b = block_of(access.addr);
        // --- Training: link the PC's previous block to this one. ---
        if let Some(&prev) = self.last_per_pc.get(access.pc) {
            if prev != b {
                let s_prev = match self.ps.get(prev) {
                    Some(&s) => s,
                    None => {
                        let s = self.alloc_stream();
                        self.ps.insert(prev, s);
                        self.sp.insert(s, prev);
                        s
                    }
                };
                // Successor position; start a fresh stream at a boundary.
                let s_b = if (s_prev + 1) % STREAM_LEN == 0 {
                    self.alloc_stream()
                } else {
                    s_prev + 1
                };
                self.link(b, s_b);
            }
        }
        self.last_per_pc.insert(access.pc, b);

        // --- Prediction: replay the structural successors. ---
        if let Some(&s) = self.ps.get(b) {
            for k in 1..=self.degree as u64 {
                let sk = s + k;
                if sk % STREAM_LEN < k {
                    break; // crossed a stream boundary
                }
                match self.sp.get(sk) {
                    Some(&pb) => out.push(block_addr(pb)),
                    None => break,
                }
            }
        }
    }

    fn budget_bytes(&self) -> usize {
        // Table II: 8 KB.
        8 * 1024
    }

    fn max_degree(&self) -> usize {
        self.degree
    }

    fn reset(&mut self) {
        self.ps.clear();
        self.sp.clear();
        self.last_per_pc.clear();
        self.next_stream = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feed a (pc, addr) sequence; collect suggestions per access.
    fn feed(isb: &mut Isb, seq: &[(u64, u64)]) -> Vec<Vec<u64>> {
        seq.iter()
            .enumerate()
            .map(|(i, &(pc, a))| {
                let mut out = Vec::new();
                isb.on_access(&MemAccess::load(i as u64, pc, a), false, &mut out);
                out
            })
            .collect()
    }

    #[test]
    fn replays_repeated_irregular_sequence() {
        let ring: Vec<u64> = vec![0x111_000, 0x9f3_000, 0x222_4c0, 0x777_040, 0x5c1_f80];
        let mut seq = Vec::new();
        for _ in 0..10 {
            for &a in &ring {
                seq.push((0x400u64, a));
            }
        }
        let mut isb = Isb::new();
        let outs = feed(&mut isb, &seq);
        // In later laps, the suggestion after seeing ring[i] should include
        // ring[i+1]'s block address.
        let mut correct = 0;
        let start = 3 * ring.len();
        for i in start..seq.len() - 1 {
            let expect = block_addr(block_of(seq[i + 1].1));
            if outs[i].contains(&expect) {
                correct += 1;
            }
        }
        assert!(
            correct as f64 > 0.8 * (seq.len() - 1 - start) as f64,
            "correct={correct}/{}",
            seq.len() - 1 - start
        );
    }

    #[test]
    fn streams_are_pc_localized() {
        // Two PCs with interleaved independent rings: both learnable.
        let ring_a: Vec<u64> = vec![0x10_000, 0x90_000, 0x20_000];
        let ring_b: Vec<u64> = vec![0x55_000, 0x66_000, 0x77_000];
        let mut seq = Vec::new();
        for lap in 0..12 {
            seq.push((0xa, ring_a[lap % 3]));
            seq.push((0xb, ring_b[lap % 3]));
        }
        let mut isb = Isb::new();
        let outs = feed(&mut isb, &seq);
        // Late accesses of PC 0xa should predict the next ring_a element,
        // not a ring_b element.
        let mut cross = 0;
        let mut correct = 0;
        for i in 10..seq.len() {
            let (pc, _) = seq[i];
            let ring = if pc == 0xa { &ring_a } else { &ring_b };
            let other = if pc == 0xa { &ring_b } else { &ring_a };
            for &s in &outs[i] {
                if ring.iter().any(|&r| block_addr(block_of(r)) == s) {
                    correct += 1;
                }
                if other.iter().any(|&r| block_addr(block_of(r)) == s) {
                    cross += 1;
                }
            }
        }
        assert!(correct > 0);
        assert_eq!(cross, 0, "predictions crossed PC streams");
    }

    #[test]
    fn no_predictions_for_unseen_addresses() {
        let mut isb = Isb::new();
        let outs = feed(&mut isb, &[(1, 0x1000), (1, 0x2000), (1, 0x99_9000)]);
        // First lap of anything is unpredictable.
        assert!(outs.iter().all(|o| o.is_empty()));
    }

    #[test]
    fn relearns_changed_successor() {
        let mut isb = Isb::new();
        // A→B repeatedly, then A→C repeatedly: eventually predicts C.
        let mut seq: Vec<(u64, u64)> = Vec::new();
        for _ in 0..5 {
            seq.push((1, 0x1000));
            seq.push((1, 0x2000));
        }
        for _ in 0..5 {
            seq.push((1, 0x1000));
            seq.push((1, 0x3000));
        }
        let outs = feed(&mut isb, &seq);
        // Last occurrence of A should predict C's block.
        let last_a = seq.iter().rposition(|&(_, a)| a == 0x1000).unwrap();
        assert!(
            outs[last_a].contains(&block_addr(block_of(0x3000))),
            "{:?}",
            outs[last_a]
        );
    }

    #[test]
    fn reset_forgets_everything() {
        let mut isb = Isb::new();
        let seq: Vec<(u64, u64)> = (0..20).map(|i| (1u64, 0x1000 + (i % 4) * 0x9000)).collect();
        feed(&mut isb, &seq);
        isb.reset();
        let outs = feed(&mut isb, &seq[..4]);
        assert!(outs.iter().all(|o| o.is_empty()));
    }
}
