//! Domino temporal prefetcher — Bakhshalipour et al., HPCA 2018.
//!
//! Domino records the global miss sequence and predicts by matching the
//! history of the *last one or two* miss addresses: a two-miss match is
//! more precise and preferred; a one-miss match is the fallback. This
//! mirrors the paper's description ("using only the history of both one
//! and two last miss addresses to find a match for prefetching") with the
//! hardware FIFO structures (LogMiss/PointBuf/FetchBuf) abstracted into
//! bounded correlation tables of equivalent budget.
//!
//! Configuration per Table II: ≈2.4 KB.

use crate::bounded::BoundedMap;
use crate::traits::{PredictionKind, Prefetcher};
use resemble_trace::record::{block_addr, block_of};
use resemble_trace::MemAccess;

/// Mix two block numbers into one table key.
#[inline]
fn pair_key(a: u64, b: u64) -> u64 {
    a.rotate_left(21) ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Domino temporal prefetcher.
#[derive(Debug, Clone)]
pub struct Domino {
    /// last-one-miss correlation: miss → next miss
    single: BoundedMap<u64>,
    /// last-two-misses correlation: (prev, cur) → next miss
    pair: BoundedMap<u64>,
    prev1: Option<u64>,
    prev2: Option<u64>,
    degree: usize,
}

impl Domino {
    /// Domino with degree 2 and correlation tables sized for off-chip
    /// metadata (Domino's design point stores its history in main memory;
    /// Table II's 2.4 KB is the on-chip buffering).
    pub fn new() -> Self {
        Self::with_params(1 << 19, 2)
    }

    /// Parameterized constructor (for ablations).
    pub fn with_params(entries: usize, degree: usize) -> Self {
        assert!(degree >= 1);
        Self {
            single: BoundedMap::new(entries),
            pair: BoundedMap::new(entries),
            prev1: None,
            prev2: None,
            degree,
        }
    }

    /// Predict the block following `(prev, cur)`: two-miss match first,
    /// one-miss fallback.
    fn predict(&self, prev: Option<u64>, cur: u64) -> Option<u64> {
        if let Some(p) = prev {
            if let Some(&n) = self.pair.get(pair_key(p, cur)) {
                return Some(n);
            }
        }
        self.single.get(cur).copied()
    }
}

impl Default for Domino {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Domino {
    fn name(&self) -> &'static str {
        "domino"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Temporal
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<u64>) {
        let b = block_of(access.addr);
        // Domino trains on the miss stream; hits neither train nor shift
        // history (the LLC miss log only sees misses). We still predict on
        // hits using current history — prediction is free.
        if !hit {
            if let Some(p1) = self.prev1 {
                if p1 != b {
                    self.single.insert(p1, b);
                    if let Some(p2) = self.prev2 {
                        self.pair.insert(pair_key(p2, p1), b);
                    }
                }
            }
            if self.prev1 != Some(b) {
                self.prev2 = self.prev1;
                self.prev1 = Some(b);
            }
        }
        // Chain predictions up to `degree`.
        let mut prev = if !hit { self.prev2 } else { self.prev1 };
        let mut cur = b;
        for _ in 0..self.degree {
            match self.predict(prev, cur) {
                Some(next) if next != cur => {
                    out.push(block_addr(next));
                    prev = Some(cur);
                    cur = next;
                }
                _ => break,
            }
        }
    }

    fn budget_bytes(&self) -> usize {
        // Table II: 2 KB prefetch buffer + 256 B PointBuf + 128 B LogMiss
        // + 64 B FetchBuf ≈ 2.4 KB.
        2458
    }

    fn max_degree(&self) -> usize {
        self.degree
    }

    fn reset(&mut self) {
        self.single.clear();
        self.pair.clear();
        self.prev1 = None;
        self.prev2 = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(d: &mut Domino, addrs: &[u64], hits: Option<&[bool]>) -> Vec<Vec<u64>> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let mut out = Vec::new();
                let hit = hits.map(|h| h[i]).unwrap_or(false);
                d.on_access(&MemAccess::load(i as u64, 0, a), hit, &mut out);
                out
            })
            .collect()
    }

    #[test]
    fn replays_global_miss_sequence() {
        let ring: Vec<u64> = vec![0xaa_000, 0x1b_3c0, 0x99_9980, 0x40_0440];
        let seq: Vec<u64> = (0..40).map(|i| ring[i % 4]).collect();
        let mut d = Domino::new();
        let outs = feed(&mut d, &seq, None);
        let mut correct = 0;
        for i in 8..seq.len() - 1 {
            if outs[i].contains(&block_addr(block_of(seq[i + 1]))) {
                correct += 1;
            }
        }
        assert!(correct > 25, "correct={correct}");
    }

    #[test]
    fn two_miss_history_disambiguates() {
        // Sequence: A B C ... A D E: after A, next depends on what preceded
        // A. Single-miss matching can't tell; pair matching can.
        let a = 0x1_000u64;
        let (b, c) = (0x2_000u64, 0x3_000u64);
        let (d_, e) = (0x4_000u64, 0x5_000u64);
        // Pattern: X A B, Y A D repeated; (X,A)->B, (Y,A)->D.
        let x = 0x8_000u64;
        let y = 0x9_000u64;
        let mut seq = Vec::new();
        for _ in 0..10 {
            seq.extend_from_slice(&[x, a, b, c, y, a, d_, e]);
        }
        let mut dom = Domino::new();
        let outs = feed(&mut dom, &seq, None);
        // Late occurrence of "x a": prediction should be b, not d.
        let i = seq.len() - 7; // position of the last 'a' preceded by x
        assert_eq!(seq[i], a);
        assert_eq!(seq[i - 1], x);
        assert!(outs[i].contains(&block_addr(block_of(b))), "{:?}", outs[i]);
        assert!(!outs[i].contains(&block_addr(block_of(d_))));
    }

    #[test]
    fn chains_predictions_to_degree() {
        let ring: Vec<u64> = vec![0x10_000, 0x20_000, 0x30_000, 0x40_000, 0x50_000];
        let seq: Vec<u64> = (0..50).map(|i| ring[i % 5]).collect();
        let mut d = Domino::with_params(512, 3);
        let outs = feed(&mut d, &seq, None);
        let last = outs.last().unwrap();
        assert_eq!(last.len(), 3, "should chain 3 ahead: {last:?}");
    }

    #[test]
    fn hits_do_not_pollute_training() {
        // Train A→B. Then a *hit* on Z must not create A→Z or Z→...
        let mut d = Domino::new();
        let seq = [0x1000u64, 0x2000, 0x1000, 0x2000, 0x1000, 0x2000];
        feed(&mut d, &seq, None);
        let mut out = Vec::new();
        d.on_access(&MemAccess::load(99, 0, 0x9000), true, &mut out); // hit
        out.clear();
        d.on_access(&MemAccess::load(100, 0, 0x1000), false, &mut out);
        assert!(out.contains(&0x2000), "{out:?}");
    }

    #[test]
    fn self_loop_not_recorded() {
        let mut d = Domino::new();
        let seq = [0x1000u64, 0x1000, 0x1000];
        let outs = feed(&mut d, &seq, None);
        assert!(outs.iter().all(|o| o.is_empty()));
    }
}
