//! Next-line prefetcher: the simplest spatial baseline.

use crate::traits::{PredictionKind, Prefetcher};
use resemble_trace::record::{block_align, BLOCK_SIZE};
use resemble_trace::MemAccess;

/// Prefetches the `degree` blocks following every access.
#[derive(Debug, Clone)]
pub struct NextLine {
    degree: usize,
}

impl NextLine {
    /// Next-line prefetcher with the given degree (suggestions per access).
    pub fn new(degree: usize) -> Self {
        assert!(degree >= 1);
        Self { degree }
    }
}

impl Default for NextLine {
    fn default() -> Self {
        Self::new(1)
    }
}

impl Prefetcher for NextLine {
    fn name(&self) -> &'static str {
        "next_line"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Spatial
    }

    fn on_access(&mut self, access: &MemAccess, _hit: bool, out: &mut Vec<u64>) {
        let base = block_align(access.addr);
        for d in 1..=self.degree as u64 {
            out.push(base + d * BLOCK_SIZE);
        }
    }

    fn budget_bytes(&self) -> usize {
        0 // stateless
    }

    fn max_degree(&self) -> usize {
        self.degree
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suggests_following_blocks() {
        let mut p = NextLine::new(2);
        let mut out = Vec::new();
        p.on_access(&MemAccess::load(0, 0, 0x1010), false, &mut out);
        assert_eq!(out, vec![0x1040, 0x1080]);
    }

    #[test]
    fn default_degree_one() {
        let mut p = NextLine::default();
        let mut out = Vec::new();
        p.on_access(&MemAccess::load(0, 0, 0x0), true, &mut out);
        assert_eq!(out, vec![0x40]);
        assert_eq!(p.max_degree(), 1);
    }
}
