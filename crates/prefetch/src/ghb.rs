//! GHB G/DC — Global History Buffer with delta correlation (Nesbit &
//! Smith, HPCA 2004), reference \[5\] of the paper.
//!
//! A circular global history buffer holds recent miss addresses; an index
//! table keyed by the last *delta pair* points at the most recent
//! occurrence of that pair in the buffer, and prediction walks forward
//! from there, emitting the deltas that followed. Bridges the rule-based
//! stride prefetchers and the table-based temporal ones.

use crate::traits::{PredictionKind, Prefetcher};
use resemble_trace::record::{block_addr, block_of};
use resemble_trace::util::FxHashMap;
use resemble_trace::MemAccess;

/// GHB delta-correlation prefetcher.
#[derive(Debug, Clone)]
pub struct GhbDc {
    /// circular buffer of miss block numbers
    ghb: Vec<u64>,
    head: usize,
    len: usize,
    /// (delta1, delta2) key → GHB position right after that pair
    index: FxHashMap<u64, usize>,
    degree: usize,
}

#[inline]
fn pair_key(d1: i64, d2: i64) -> u64 {
    (d1 as u64).rotate_left(31) ^ (d2 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl GhbDc {
    /// GHB with 64K entries and degree 4.
    pub fn new() -> Self {
        Self::with_params(1 << 16, 4)
    }

    /// Parameterized constructor.
    pub fn with_params(ghb_len: usize, degree: usize) -> Self {
        assert!(ghb_len >= 4 && degree >= 1);
        Self {
            ghb: vec![0; ghb_len],
            head: 0,
            len: 0,
            index: FxHashMap::default(),
            degree,
        }
    }

    #[inline]
    fn at(&self, logical: usize) -> u64 {
        // logical 0 = oldest retained, len-1 = newest
        let n = self.ghb.len();
        let start = (self.head + n - self.len) % n;
        self.ghb[(start + logical) % n]
    }
}

impl Default for GhbDc {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for GhbDc {
    fn name(&self) -> &'static str {
        "ghb_dc"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Temporal
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<u64>) {
        if hit {
            return;
        }
        let b = block_of(access.addr);
        // Push into the GHB.
        self.ghb[self.head] = b;
        self.head = (self.head + 1) % self.ghb.len();
        self.len = (self.len + 1).min(self.ghb.len());
        if self.len < 3 {
            return;
        }
        // Current last-two-deltas key; index points at the position of the
        // newest element so a future match can walk forward from here.
        let (n2, n1, n0) = (
            self.at(self.len - 3),
            self.at(self.len - 2),
            self.at(self.len - 1),
        );
        let d1 = n1 as i64 - n2 as i64;
        let d2 = n0 as i64 - n1 as i64;
        let key = pair_key(d1, d2);
        let prev_pos = self.index.insert(key, self.len - 1);
        // Predict by replaying the deltas that followed the previous
        // occurrence of this delta pair.
        if let Some(pos) = prev_pos {
            // The buffer may have slid since `pos` was recorded: positions
            // shrink as old entries fall off. Convert conservatively.
            let slid = self.len.min(self.ghb.len());
            if pos < slid {
                let mut cur = b;
                for p in pos..pos + self.degree {
                    if p + 1 >= self.len - 1 {
                        break;
                    }
                    let da = self.at(p + 1) as i64 - self.at(p) as i64;
                    let next = cur as i64 + da;
                    if next <= 0 {
                        break;
                    }
                    cur = next as u64;
                    out.push(block_addr(cur));
                }
            }
        }
    }

    fn budget_bytes(&self) -> usize {
        2 * 1024 // on-chip index cache; GHB off-chip
    }

    fn max_degree(&self) -> usize {
        self.degree
    }

    fn reset(&mut self) {
        self.ghb.fill(0);
        self.head = 0;
        self.len = 0;
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(g: &mut GhbDc, addrs: &[u64]) -> Vec<Vec<u64>> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let mut out = Vec::new();
                g.on_access(&MemAccess::load(i as u64, 0, a), false, &mut out);
                out
            })
            .collect()
    }

    #[test]
    fn learns_repeating_delta_pattern() {
        // Deltas cycle +1, +2, +5 (blocks): after a lap, the pair (d1,d2)
        // recurs and the following deltas replay.
        let mut addrs = Vec::new();
        let mut a = 0x10_0000u64;
        for _ in 0..30 {
            for d in [1u64, 2, 5] {
                a += d * 64;
                addrs.push(a);
            }
        }
        let mut g = GhbDc::new();
        let outs = feed(&mut g, &addrs);
        let n = addrs.len();
        let mut correct = 0;
        for i in n - 20..n - 1 {
            if outs[i].contains(&(addrs[i + 1] & !63)) {
                correct += 1;
            }
        }
        assert!(correct > 12, "correct={correct}");
    }

    #[test]
    fn random_deltas_rarely_predict_usefully() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let addrs: Vec<u64> = (0..5000)
            .map(|_| rng.gen_range(0x1_0000u64..0x1000_0000) & !63)
            .collect();
        let mut g = GhbDc::new();
        let outs = feed(&mut g, &addrs);
        let mut correct = 0;
        for i in 0..addrs.len() - 1 {
            if outs[i].contains(&(addrs[i + 1] & !63)) {
                correct += 1;
            }
        }
        assert!(correct < 100, "correct={correct}");
    }

    #[test]
    fn needs_three_misses_before_predicting() {
        let mut g = GhbDc::new();
        let outs = feed(&mut g, &[0x1000, 0x2000]);
        assert!(outs.iter().all(|o| o.is_empty()));
    }

    #[test]
    fn wraparound_is_safe() {
        let mut g = GhbDc::with_params(8, 2);
        let addrs: Vec<u64> = (0..200u64).map(|i| 0x1000 + (i % 7) * 0x940).collect();
        let outs = feed(&mut g, &addrs);
        assert_eq!(outs.len(), 200);
    }
}
