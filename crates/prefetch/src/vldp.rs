//! Variable Length Delta Prefetcher (VLDP) — Shevgoor et al., MICRO 2015.
//!
//! VLDP keeps a per-page delta history and several Delta Prediction Tables
//! (DPTs) keyed by the last 1, 2, or 3 deltas; prediction prefers the
//! deepest (longest-history) table that matches, which captures "complex"
//! repeating delta patterns beyond single strides. Included as an extra
//! spatial ensemble member for ablations (Table I lists it as a canonical
//! spatial prefetcher).

use crate::bounded::BoundedMap;
use crate::traits::{PredictionKind, Prefetcher};
use resemble_trace::record::{BLOCKS_PER_PAGE, BLOCK_BITS, BLOCK_SIZE, PAGE_BITS};
use resemble_trace::MemAccess;

const HISTORY: usize = 3;

#[derive(Debug, Clone, Copy, Default)]
struct DhbEntry {
    page_tag: u64,
    last_offset: u8,
    deltas: [i16; HISTORY], // most recent last
    n_deltas: u8,
    valid: bool,
}

/// Hash a delta sequence into a DPT key.
#[inline]
fn seq_key(deltas: &[i16]) -> u64 {
    let mut k = 0xcbf2_9ce4_8422_2325u64;
    for &d in deltas {
        k = (k ^ (d as u16 as u64)).wrapping_mul(0x1000_0000_01b3);
    }
    k
}

/// Variable Length Delta Prefetcher.
#[derive(Debug, Clone)]
pub struct Vldp {
    dhb: Vec<DhbEntry>,
    /// `dpt[k]` maps the last (k+1) deltas to the next delta.
    dpt: Vec<BoundedMap<i16>>,
    degree: usize,
}

impl Vldp {
    /// VLDP with 64 page-history entries and 256-entry DPTs per level.
    pub fn new() -> Self {
        Self::with_params(64, 256, 2)
    }

    /// Parameterized constructor.
    pub fn with_params(dhb_entries: usize, dpt_entries: usize, degree: usize) -> Self {
        assert!(dhb_entries.is_power_of_two());
        assert!(degree >= 1);
        Self {
            dhb: vec![DhbEntry::default(); dhb_entries],
            dpt: (0..HISTORY).map(|_| BoundedMap::new(dpt_entries)).collect(),
            degree,
        }
    }

    #[inline]
    fn dhb_index(&self, page: u64) -> usize {
        (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 24) as usize & (self.dhb.len() - 1)
    }

    /// Longest-match next-delta prediction from a delta history.
    fn predict(&self, deltas: &[i16]) -> Option<i16> {
        for depth in (1..=deltas.len().min(HISTORY)).rev() {
            let key = seq_key(&deltas[deltas.len() - depth..]);
            if let Some(&d) = self.dpt[depth - 1].get(key) {
                return Some(d);
            }
        }
        None
    }

    fn train(&mut self, deltas: &[i16], next: i16) {
        for depth in 1..=deltas.len().min(HISTORY) {
            let key = seq_key(&deltas[deltas.len() - depth..]);
            self.dpt[depth - 1].insert(key, next);
        }
    }
}

impl Default for Vldp {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Vldp {
    fn name(&self) -> &'static str {
        "vldp"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Spatial
    }

    fn on_access(&mut self, access: &MemAccess, _hit: bool, out: &mut Vec<u64>) {
        let page = access.addr >> PAGE_BITS;
        let offset = ((access.addr >> BLOCK_BITS) & (BLOCKS_PER_PAGE - 1)) as u8;
        let idx = self.dhb_index(page);
        let e = self.dhb[idx];
        let mut hist: [i16; HISTORY];
        let n: usize;
        if e.valid && e.page_tag == page {
            let delta = offset as i16 - e.last_offset as i16;
            if delta == 0 {
                return;
            }
            // Train every DPT level with the observed continuation.
            let hist_now = &e.deltas[HISTORY - e.n_deltas as usize..];
            if !hist_now.is_empty() {
                let hist_vec: Vec<i16> = hist_now.to_vec();
                self.train(&hist_vec, delta);
            }
            // Shift delta into history.
            hist = e.deltas;
            hist.rotate_left(1);
            hist[HISTORY - 1] = delta;
            n = (e.n_deltas as usize + 1).min(HISTORY);
        } else {
            hist = [0; HISTORY];
            n = 0;
        }
        self.dhb[idx] = DhbEntry {
            page_tag: page,
            last_offset: offset,
            deltas: hist,
            n_deltas: n as u8,
            valid: true,
        };

        // Predict ahead using the updated history.
        let mut cur = offset as i32;
        let mut h: Vec<i16> = hist[HISTORY - n..].to_vec();
        for _ in 0..self.degree {
            let Some(d) = self.predict(&h) else { break };
            let next = cur + d as i32;
            if !(0..BLOCKS_PER_PAGE as i32).contains(&next) {
                break;
            }
            out.push((page << PAGE_BITS) + next as u64 * BLOCK_SIZE);
            cur = next;
            h.push(d);
            if h.len() > HISTORY {
                h.remove(0);
            }
        }
    }

    fn budget_bytes(&self) -> usize {
        self.dhb.len() * 16 + self.dpt.iter().map(|t| t.capacity() * 10).sum::<usize>()
    }

    fn max_degree(&self) -> usize {
        self.degree
    }

    fn reset(&mut self) {
        self.dhb.fill(DhbEntry::default());
        for t in &mut self.dpt {
            t.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(v: &mut Vldp, addrs: &[u64]) -> Vec<Vec<u64>> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let mut out = Vec::new();
                v.on_access(&MemAccess::load(i as u64, 0, a), false, &mut out);
                out
            })
            .collect()
    }

    /// Build an in-page offset walk repeated over many pages.
    fn pattern_trace(offsets: &[u64], pages: u64) -> Vec<u64> {
        let mut t = Vec::new();
        for p in 0..pages {
            for &o in offsets {
                t.push((0x300 + p) * 4096 + o * 64);
            }
        }
        t
    }

    #[test]
    fn learns_alternating_delta_pattern() {
        // Offsets 0,1,3,4,6,7,... deltas alternate 1,2,1,2 — a pattern a
        // single-stride prefetcher cannot learn but VLDP's depth-2/3 can.
        let offsets: Vec<u64> = (0..30).map(|i| (i / 2) * 3 + (i % 2)).collect();
        let trace = pattern_trace(&offsets, 30);
        let mut v = Vldp::new();
        let outs = feed(&mut v, &trace);
        let n = trace.len();
        let mut correct = 0;
        let mut total = 0;
        for i in n - 100..n - 1 {
            // only in-page continuations are predictable
            if trace[i + 1] >> 12 == trace[i] >> 12 {
                total += 1;
                if outs[i].contains(&trace[i + 1]) {
                    correct += 1;
                }
            }
        }
        assert!(correct * 10 > total * 7, "correct={correct}/{total}");
    }

    #[test]
    fn learns_simple_stride() {
        let offsets: Vec<u64> = (0..32).map(|i| i * 2).collect();
        let trace = pattern_trace(&offsets, 20);
        let mut v = Vldp::new();
        let outs = feed(&mut v, &trace);
        let n = trace.len();
        let mut correct = 0;
        for i in n - 30..n - 1 {
            if trace[i + 1] >> 12 == trace[i] >> 12 && outs[i].contains(&trace[i + 1]) {
                correct += 1;
            }
        }
        assert!(correct > 20, "correct={correct}");
    }

    #[test]
    fn predictions_never_leave_page() {
        let offsets: Vec<u64> = (0..64).collect();
        let trace = pattern_trace(&offsets, 10);
        let mut v = Vldp::with_params(64, 256, 4);
        let outs = feed(&mut v, &trace);
        for (i, o) in outs.iter().enumerate() {
            for &p in o {
                assert_eq!(p >> 12, trace[i] >> 12);
            }
        }
    }

    #[test]
    fn no_history_no_prediction() {
        let mut v = Vldp::new();
        let outs = feed(&mut v, &[0x1000, 0x5000, 0x9000]); // all new pages
        assert!(outs.iter().all(|o| o.is_empty()));
    }
}
