//! Markov prefetcher — Joseph & Grunwald, ISCA 1997.
//!
//! The earliest correlation prefetcher (reference \[4\] of the paper): a
//! first-order Markov model over the miss stream, keeping up to `k`
//! weighted successors per miss address and prefetching the most likely
//! ones. Included as a classic temporal ensemble member for ablations and
//! as the counted-candidate core that the Voyager-like neural prefetcher
//! augments with a learned scorer.

use crate::bounded::BoundedMap;
use crate::traits::{PredictionKind, Prefetcher};
use resemble_trace::record::{block_addr, block_of};
use resemble_trace::MemAccess;

const SLOTS: usize = 4;

#[derive(Debug, Clone, Copy, Default)]
struct Succ {
    block: u64,
    count: u32,
}

/// First-order Markov miss-correlation prefetcher.
#[derive(Debug, Clone)]
pub struct Markov {
    table: BoundedMap<[Succ; SLOTS]>,
    prev: Option<u64>,
    degree: usize,
}

impl Markov {
    /// Markov with 256K transition entries and degree 2.
    pub fn new() -> Self {
        Self::with_params(1 << 18, 2)
    }

    /// Parameterized constructor.
    pub fn with_params(entries: usize, degree: usize) -> Self {
        assert!((1..=SLOTS).contains(&degree));
        Self {
            table: BoundedMap::new(entries),
            prev: None,
            degree,
        }
    }
}

impl Default for Markov {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Markov {
    fn name(&self) -> &'static str {
        "markov"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Temporal
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<u64>) {
        let b = block_of(access.addr);
        if !hit {
            // Train prev → b.
            if let Some(p) = self.prev {
                if p != b {
                    let mut slots = self.table.get(p).copied().unwrap_or_default();
                    if let Some(s) = slots.iter_mut().find(|s| s.count > 0 && s.block == b) {
                        s.count = s.count.saturating_add(1);
                    } else {
                        let weakest = slots.iter_mut().min_by_key(|s| s.count).expect("SLOTS > 0");
                        *weakest = Succ { block: b, count: 1 };
                    }
                    self.table.insert(p, slots);
                }
            }
            self.prev = Some(b);
        }
        // Predict: most-counted successors of the current block.
        if let Some(slots) = self.table.get(b) {
            let mut ranked: Vec<&Succ> = slots.iter().filter(|s| s.count > 0).collect();
            ranked.sort_by(|a, c| c.count.cmp(&a.count).then(a.block.cmp(&c.block)));
            for s in ranked.into_iter().take(self.degree) {
                out.push(block_addr(s.block));
            }
        }
    }

    fn budget_bytes(&self) -> usize {
        4 * 1024 // on-chip successor cache; full table off-chip
    }

    fn max_degree(&self) -> usize {
        self.degree
    }

    fn reset(&mut self) {
        self.table.clear();
        self.prev = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(m: &mut Markov, addrs: &[u64]) -> Vec<Vec<u64>> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let mut out = Vec::new();
                m.on_access(&MemAccess::load(i as u64, 0, a), false, &mut out);
                out
            })
            .collect()
    }

    #[test]
    fn learns_deterministic_chain() {
        let ring = [0x1_000u64, 0x8_000, 0x3_000];
        let seq: Vec<u64> = (0..30).map(|i| ring[i % 3]).collect();
        let mut m = Markov::new();
        let outs = feed(&mut m, &seq);
        for i in 6..29 {
            assert_eq!(
                outs[i].first(),
                Some(&block_addr(block_of(seq[i + 1]))),
                "at {i}"
            );
        }
    }

    #[test]
    fn ranks_successors_by_frequency() {
        // A followed by B twice as often as C.
        let (a, b, c) = (0x1_000u64, 0x2_000, 0x3_000);
        let mut seq = Vec::new();
        for i in 0..30 {
            seq.push(a);
            seq.push(if i % 3 == 0 { c } else { b });
        }
        let mut m = Markov::with_params(1024, 2);
        let outs = feed(&mut m, &seq);
        let last_a = seq.len() - 2;
        assert_eq!(
            outs[last_a][0],
            block_addr(block_of(b)),
            "B must rank first"
        );
        assert_eq!(outs[last_a][1], block_addr(block_of(c)));
    }

    #[test]
    fn cold_addresses_predict_nothing() {
        let mut m = Markov::new();
        let outs = feed(&mut m, &[0x10_000, 0x20_000, 0x30_000]);
        assert!(outs.iter().all(|o| o.is_empty()));
    }
}
