//! STeMS — Spatio-Temporal Memory Streaming (Somogyi et al., ISCA 2009).
//!
//! The third row of the paper's Table I taxonomy. STeMS couples the two
//! localities: a *spatial* component records, per (PC, trigger-offset),
//! the bit pattern of blocks touched inside a region generation (as in
//! SMS), and a *temporal* component records the sequence of region
//! triggers so that on a recorded trigger the stream of upcoming regions
//! can be reconstructed — each expanded with its recorded spatial
//! pattern. The paper notes STeMS "suffers from low prefetching coverage
//! and high start-up latency"; this implementation reproduces those
//! characteristics (patterns only become available after a generation
//! closes).

use crate::bounded::BoundedMap;
use crate::traits::{PredictionKind, Prefetcher};
use resemble_trace::record::{BLOCKS_PER_PAGE, BLOCK_BITS, BLOCK_SIZE, PAGE_BITS};
use resemble_trace::MemAccess;
use std::collections::VecDeque;

/// An open region generation being recorded.
#[derive(Debug, Clone, Copy)]
struct Generation {
    page: u64,
    key: u64,
    /// bit i set = block offset i touched during this generation
    pattern: u64,
}

/// STeMS prefetcher.
#[derive(Debug, Clone)]
pub struct Stems {
    /// (pc, trigger offset) → recorded footprint bitmap
    patterns: BoundedMap<u64>,
    /// trigger block → next generation's trigger block (temporal sequence)
    successors: BoundedMap<u64>,
    /// open generations, oldest first (fixed small capacity, like the
    /// original's active generation table)
    active: VecDeque<Generation>,
    last_trigger: Option<u64>,
    active_cap: usize,
    /// max prefetches per trigger
    degree: usize,
    /// how many future regions to reconstruct
    lookahead_regions: usize,
}

#[inline]
fn pattern_key(pc: u64, trigger_offset: u64) -> u64 {
    (pc.rotate_left(7) ^ trigger_offset).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl Stems {
    /// STeMS with 64K pattern/successor entries, 16 active generations,
    /// degree 8, two-region reconstruction.
    pub fn new() -> Self {
        Self::with_params(1 << 16, 16, 8, 2)
    }

    /// Parameterized constructor.
    pub fn with_params(
        table_entries: usize,
        active_cap: usize,
        degree: usize,
        lookahead_regions: usize,
    ) -> Self {
        assert!(active_cap > 0 && degree >= 1 && lookahead_regions >= 1);
        Self {
            patterns: BoundedMap::new(table_entries),
            successors: BoundedMap::new(table_entries),
            active: VecDeque::with_capacity(active_cap),
            last_trigger: None,
            active_cap,
            degree,
            lookahead_regions,
        }
    }

    /// Close a generation: persist its footprint pattern.
    fn close(&mut self, g: Generation) {
        self.patterns.insert(g.key, g.pattern);
    }

    /// Emit prefetches for a recorded pattern around `page`, skipping the
    /// trigger offset itself.
    fn expand(
        &self,
        page: u64,
        pattern: u64,
        skip_offset: u64,
        out: &mut Vec<u64>,
        budget: &mut usize,
    ) {
        for off in 0..BLOCKS_PER_PAGE {
            if *budget == 0 {
                return;
            }
            if off != skip_offset && pattern & (1 << off) != 0 {
                out.push((page << PAGE_BITS) + off * BLOCK_SIZE);
                *budget -= 1;
            }
        }
    }
}

impl Default for Stems {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Stems {
    fn name(&self) -> &'static str {
        "stems"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Temporal // reconstructed streams roam the address space
    }

    fn on_access(&mut self, access: &MemAccess, _hit: bool, out: &mut Vec<u64>) {
        let page = access.addr >> PAGE_BITS;
        let offset = (access.addr >> BLOCK_BITS) & (BLOCKS_PER_PAGE - 1);
        let block = access.addr >> BLOCK_BITS;

        // Record into an open generation, if any.
        if let Some(g) = self.active.iter_mut().find(|g| g.page == page) {
            g.pattern |= 1 << offset;
            return; // not a trigger
        }

        // Trigger: new region generation.
        let key = pattern_key(access.pc, offset);
        if self.active.len() == self.active_cap {
            if let Some(old) = self.active.pop_front() {
                self.close(old);
            }
        }
        self.active.push_back(Generation {
            page,
            key,
            pattern: 1 << offset,
        });
        // Temporal link from the previous trigger.
        if let Some(prev) = self.last_trigger {
            if prev != block {
                self.successors.insert(prev, block);
            }
        }
        self.last_trigger = Some(block);

        // Reconstruct: this region's recorded pattern, then follow the
        // temporal successor chain for upcoming regions.
        let mut budget = self.degree;
        if let Some(&pat) = self.patterns.get(key) {
            self.expand(page, pat, offset, out, &mut budget);
        }
        let mut cur = block;
        for _ in 1..self.lookahead_regions {
            let Some(&next_trigger) = self.successors.get(cur) else {
                break;
            };
            if budget == 0 {
                break;
            }
            out.push(next_trigger << BLOCK_BITS);
            budget = budget.saturating_sub(1);
            let npage = next_trigger >> (PAGE_BITS - BLOCK_BITS);
            let noff = next_trigger & (BLOCKS_PER_PAGE - 1);
            if let Some(&pat) = self.patterns.get(pattern_key(access.pc, noff)) {
                self.expand(npage, pat, noff, out, &mut budget);
            }
            cur = next_trigger;
        }
    }

    fn budget_bytes(&self) -> usize {
        // On-chip AGT + reconstruction buffers; tables off-chip per paper.
        12 * 1024
    }

    fn max_degree(&self) -> usize {
        self.degree
    }

    fn reset(&mut self) {
        self.patterns.clear();
        self.successors.clear();
        self.active.clear();
        self.last_trigger = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(p: &mut Stems, seq: &[(u64, u64)]) -> Vec<Vec<u64>> {
        seq.iter()
            .enumerate()
            .map(|(i, &(pc, a))| {
                let mut out = Vec::new();
                p.on_access(&MemAccess::load(i as u64, pc, a), false, &mut out);
                out
            })
            .collect()
    }

    /// Visit regions with a fixed in-region footprint, repeatedly.
    fn footprint_walk(pages: &[u64], offsets: &[u64], laps: usize, pc: u64) -> Vec<(u64, u64)> {
        let mut seq = Vec::new();
        for _ in 0..laps {
            for &p in pages {
                for &o in offsets {
                    seq.push((pc, p * 4096 + o * 64));
                }
            }
        }
        seq
    }

    #[test]
    fn replays_spatial_footprint_on_retrigger() {
        // 20 pages so generations close (active cap 16), same footprint.
        let pages: Vec<u64> = (0x100..0x114).collect();
        let seq = footprint_walk(&pages, &[0, 3, 9, 17], 3, 0x40);
        let mut st = Stems::new();
        let outs = feed(&mut st, &seq);
        // In the final lap, the trigger access of each region should
        // prefetch the recorded offsets 3, 9, 17.
        let last_lap = &outs[2 * seq.len() / 3..];
        let triggers: Vec<&Vec<u64>> = last_lap.iter().step_by(4).collect(); // every 4th access is a trigger
        let mut good = 0;
        for t in &triggers {
            let offs: Vec<u64> = t.iter().map(|a| (a >> 6) & 63).collect();
            if offs.contains(&3) && offs.contains(&9) && offs.contains(&17) {
                good += 1;
            }
        }
        assert!(good >= triggers.len() / 2, "good={good}/{}", triggers.len());
    }

    #[test]
    fn temporal_chain_predicts_next_region() {
        let pages: Vec<u64> = (0x200..0x214).collect();
        let seq = footprint_walk(&pages, &[0, 5], 3, 0x41);
        let mut st = Stems::new();
        let outs = feed(&mut st, &seq);
        // Late triggers should include the NEXT region's trigger block.
        let n = seq.len();
        let mut chained = 0;
        for i in (2 * n / 3..n - 2).step_by(2) {
            let next_trigger_addr = seq[i + 2].1 & !63;
            if outs[i].contains(&next_trigger_addr) {
                chained += 1;
            }
        }
        assert!(chained > 0, "temporal reconstruction never fired");
    }

    #[test]
    fn cold_start_produces_nothing() {
        let mut st = Stems::new();
        let seq = footprint_walk(&[0x300, 0x301], &[0, 1, 2], 1, 0x42);
        let outs = feed(&mut st, &seq);
        assert!(
            outs.iter().all(|o| o.is_empty()),
            "first generation has no recorded patterns (the start-up latency)"
        );
    }

    #[test]
    fn degree_budget_respected() {
        let pages: Vec<u64> = (0x400..0x420).collect();
        let offsets: Vec<u64> = (0..32).collect(); // dense footprint
        let seq = footprint_walk(&pages, &offsets, 2, 0x43);
        let mut st = Stems::with_params(1 << 12, 8, 4, 2);
        let outs = feed(&mut st, &seq);
        assert!(outs.iter().all(|o| o.len() <= 4));
    }

    #[test]
    fn reset_clears() {
        let pages: Vec<u64> = (0x500..0x514).collect();
        let seq = footprint_walk(&pages, &[0, 7], 2, 0x44);
        let mut st = Stems::new();
        feed(&mut st, &seq);
        st.reset();
        let outs = feed(&mut st, &seq[..8]);
        assert!(outs.iter().all(|o| o.is_empty()));
    }
}
