//! # resemble-prefetch
//!
//! The hardware-prefetcher zoo of the ReSemble reproduction. Implements,
//! from scratch, every prefetcher the paper uses as ensemble input or
//! baseline (Table I / Table II):
//!
//! * spatial — [`NextLine`], [`StridePrefetcher`], [`Streamer`],
//!   [`BestOffset`] (BO), [`Spp`] (SPP), [`Vldp`] (VLDP)
//! * temporal — [`Isb`] (ISB), [`Domino`], [`Stms`] (STMS),
//!   [`Markov`], [`GhbDc`] (GHB G/DC)
//! * spatio-temporal — [`Stems`] (STeMS, Table I row 3)
//! * learned — [`NeuralTemporalPrefetcher`] (Voyager-like, §VI-B)
//!
//! All implement the [`Prefetcher`] trait; a [`PrefetcherBank`] runs a set
//! of them and exposes their top-1 suggestions as the ensemble observation
//! vector (paper Eq. 4).

#![warn(missing_docs)]

pub mod bo;
pub mod bounded;
pub mod domino;
pub mod ghb;
pub mod isb;
pub mod markov;
pub mod neural;
pub mod next_line;
pub mod spp;
pub mod stems;
pub mod stms;
pub mod streamer;
pub mod stride;
pub mod traits;
pub mod vldp;

pub use bo::BestOffset;
pub use bounded::BoundedMap;
pub use domino::Domino;
pub use ghb::GhbDc;
pub use isb::Isb;
pub use markov::Markov;
pub use neural::NeuralTemporalPrefetcher;
pub use next_line::NextLine;
pub use spp::Spp;
pub use stems::Stems;
pub use stms::Stms;
pub use streamer::Streamer;
pub use stride::StridePrefetcher;
pub use traits::{CacheEvent, PredictionKind, Prefetcher, PrefetcherBank};
pub use vldp::Vldp;

/// The paper's four-prefetcher ensemble input (Table II): BO, SPP, ISB,
/// Domino — two spatial then two temporal, the order Eq. 4 assumes.
pub fn paper_bank() -> PrefetcherBank {
    PrefetcherBank::new(vec![
        Box::new(BestOffset::new()),
        Box::new(Spp::new()),
        Box::new(Isb::new()),
        Box::new(Domino::new()),
    ])
}

/// The §VI-B variant: Domino replaced by the Voyager-like neural
/// temporal prefetcher.
pub fn voyager_bank(seed: u64) -> PrefetcherBank {
    PrefetcherBank::new(vec![
        Box::new(BestOffset::new()),
        Box::new(Spp::new()),
        Box::new(Isb::new()),
        Box::new(NeuralTemporalPrefetcher::new(seed)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bank_matches_table_ii() {
        let bank = paper_bank();
        assert_eq!(bank.names(), vec!["bo", "spp", "isb", "domino"]);
        assert_eq!(
            bank.kinds(),
            vec![
                PredictionKind::Spatial,
                PredictionKind::Spatial,
                PredictionKind::Temporal,
                PredictionKind::Temporal
            ]
        );
        // Budgets: BO 4KB + SPP 5.3KB + ISB 8KB + Domino 2.4KB ≈ 19.7KB.
        let total = bank.budget_bytes();
        assert!((19_000..21_000).contains(&total), "total={total}");
    }

    #[test]
    fn voyager_bank_swaps_domino() {
        let bank = voyager_bank(1);
        assert_eq!(bank.names(), vec!["bo", "spp", "isb", "voyager"]);
    }
}
