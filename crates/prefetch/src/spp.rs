//! Signature Path Prefetcher (SPP) — Kim et al., MICRO 2016.
//!
//! SPP compresses the recent delta history within each page into a 12-bit
//! *signature*, learns `signature → next delta` correlations in a pattern
//! table, and walks a speculative *path* of deltas ahead of the demand
//! stream, multiplying per-step confidences and stopping when the path
//! confidence falls below a threshold. A small Global History Register
//! (GHR) carries learning context across page boundaries — the feature the
//! ReSemble paper highlights ("able to detect when a data access pattern
//! crosses a page boundary").
//!
//! Configuration per Table II: 256-entry ST, 512-entry PT, 8-entry GHR,
//! ≈5.3 KB.

use crate::traits::{PredictionKind, Prefetcher};
use resemble_trace::record::{BLOCKS_PER_PAGE, BLOCK_BITS, BLOCK_SIZE, PAGE_BITS};
use resemble_trace::MemAccess;

const SIG_BITS: u32 = 12;
const SIG_MASK: u32 = (1 << SIG_BITS) - 1;
const SIG_SHIFT: u32 = 3;
const DELTA_SLOTS: usize = 4;
const MAX_LOOKAHEAD: usize = 8;
const COUNTER_MAX: u16 = 255;

/// Encode a block delta (sign-magnitude, 7 bits) for signature hashing.
#[inline]
fn encode_delta(d: i32) -> u32 {
    let mag = (d.unsigned_abs()) & 0x3F;
    if d < 0 {
        mag | 0x40
    } else {
        mag
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StEntry {
    page_tag: u64,
    last_offset: u8,
    signature: u32,
    valid: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct PtDelta {
    delta: i16,
    c_delta: u16,
}

#[derive(Debug, Clone, Default)]
struct PtEntry {
    deltas: [PtDelta; DELTA_SLOTS],
    c_sig: u16,
}

#[derive(Debug, Clone, Copy, Default)]
struct GhrEntry {
    signature: u32,
    last_offset: u8,
    delta: i16,
    valid: bool,
}

/// Signature Path Prefetcher.
#[derive(Debug, Clone)]
pub struct Spp {
    st: Vec<StEntry>,
    pt: Vec<PtEntry>,
    ghr: [GhrEntry; 8],
    ghr_next: usize,
    /// Path-confidence threshold below which the lookahead stops.
    threshold: f32,
    max_degree: usize,
}

impl Spp {
    /// SPP with the Table II configuration and a 0.25 path-confidence
    /// prefetch threshold.
    pub fn new() -> Self {
        Self::with_params(256, 512, 0.25, 4)
    }

    /// Parameterized constructor (for ablations).
    pub fn with_params(
        st_entries: usize,
        pt_entries: usize,
        threshold: f32,
        max_degree: usize,
    ) -> Self {
        assert!(st_entries.is_power_of_two() && pt_entries.is_power_of_two());
        assert!((0.0..=1.0).contains(&threshold));
        Self {
            st: vec![StEntry::default(); st_entries],
            pt: vec![PtEntry::default(); pt_entries],
            ghr: [GhrEntry::default(); 8],
            ghr_next: 0,
            threshold,
            max_degree,
        }
    }

    #[inline]
    fn st_index(&self, page: u64) -> usize {
        (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as usize & (self.st.len() - 1)
    }

    #[inline]
    fn pt_index(&self, sig: u32) -> usize {
        sig as usize & (self.pt.len() - 1)
    }

    #[inline]
    fn next_sig(sig: u32, delta: i32) -> u32 {
        ((sig << SIG_SHIFT) ^ encode_delta(delta)) & SIG_MASK
    }

    /// Train PT\[sig\] with the observed delta.
    fn train(&mut self, sig: u32, delta: i32) {
        let idx = (sig as usize) & (self.pt.len() - 1);
        let e = &mut self.pt[idx];
        if e.c_sig >= COUNTER_MAX {
            // Saturate: halve all counters to keep ratios.
            e.c_sig /= 2;
            for d in &mut e.deltas {
                d.c_delta /= 2;
            }
        }
        e.c_sig += 1;
        let d16 = delta as i16;
        if let Some(slot) = e
            .deltas
            .iter_mut()
            .find(|s| s.c_delta > 0 && s.delta == d16)
        {
            slot.c_delta += 1;
            return;
        }
        // Replace the weakest slot.
        let weakest = e
            .deltas
            .iter_mut()
            .min_by_key(|s| s.c_delta)
            .expect("DELTA_SLOTS > 0");
        *weakest = PtDelta {
            delta: d16,
            c_delta: 1,
        };
    }

    /// Best (delta, confidence) for a signature, if any.
    fn best_delta(&self, sig: u32) -> Option<(i32, f32)> {
        let e = &self.pt[self.pt_index(sig)];
        if e.c_sig == 0 {
            return None;
        }
        let best = e.deltas.iter().max_by_key(|s| s.c_delta)?;
        if best.c_delta == 0 {
            return None;
        }
        Some((best.delta as i32, best.c_delta as f32 / e.c_sig as f32))
    }

    fn ghr_push(&mut self, signature: u32, last_offset: u8, delta: i16) {
        self.ghr[self.ghr_next] = GhrEntry {
            signature,
            last_offset,
            delta,
            valid: true,
        };
        self.ghr_next = (self.ghr_next + 1) % self.ghr.len();
    }

    /// Try to recover a cross-page signature for a fresh page whose first
    /// access offset is `offset`: find a GHR entry whose predicted
    /// continuation lands on this offset in the next page.
    fn ghr_lookup(&self, offset: u8) -> Option<u32> {
        for g in self.ghr.iter().filter(|g| g.valid) {
            let cont = g.last_offset as i32 + g.delta as i32 - BLOCKS_PER_PAGE as i32;
            if cont == offset as i32 {
                return Some(Spp::next_sig(g.signature, g.delta as i32));
            }
        }
        None
    }
}

impl Default for Spp {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Spp {
    fn name(&self) -> &'static str {
        "spp"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Spatial
    }

    fn on_access(&mut self, access: &MemAccess, _hit: bool, out: &mut Vec<u64>) {
        let page = access.addr >> PAGE_BITS;
        let offset = ((access.addr >> BLOCK_BITS) & (BLOCKS_PER_PAGE - 1)) as u8;
        let idx = self.st_index(page);
        let (mut sig, trained);
        if self.st[idx].valid && self.st[idx].page_tag == page {
            let old = self.st[idx];
            let delta = offset as i32 - old.last_offset as i32;
            if delta != 0 {
                self.train(old.signature, delta);
                sig = Spp::next_sig(old.signature, delta);
            } else {
                sig = old.signature;
            }
            trained = true;
        } else {
            // Fresh page: try the GHR for cross-page continuation.
            sig = self.ghr_lookup(offset).unwrap_or(0);
            trained = false;
        }
        self.st[idx] = StEntry {
            page_tag: page,
            last_offset: offset,
            signature: sig,
            valid: true,
        };
        let _ = trained;

        // Lookahead along the signature path.
        let mut conf = 1.0f32;
        let mut cur_offset = offset as i32;
        let mut issued = 0;
        for _ in 0..MAX_LOOKAHEAD {
            let Some((delta, c)) = self.best_delta(sig) else {
                break;
            };
            conf *= c;
            if conf < self.threshold {
                break;
            }
            let next = cur_offset + delta;
            if (0..BLOCKS_PER_PAGE as i32).contains(&next) {
                let target = (page << PAGE_BITS) + (next as u64) * BLOCK_SIZE;
                out.push(target);
                issued += 1;
                if issued >= self.max_degree {
                    // Record boundary context before stopping.
                }
            } else {
                // Path crosses the page: remember the context in the GHR so
                // the next page can resume it, then stop issuing.
                self.ghr_push(sig, cur_offset as u8, delta as i16);
                break;
            }
            cur_offset = next;
            sig = Spp::next_sig(sig, delta);
            if issued >= self.max_degree {
                break;
            }
        }
    }

    fn budget_bytes(&self) -> usize {
        // Table II: ≈5.3 KB.
        5427
    }

    fn max_degree(&self) -> usize {
        self.max_degree
    }

    fn reset(&mut self) {
        self.st.fill(StEntry::default());
        self.pt.fill(PtEntry::default());
        self.ghr = [GhrEntry::default(); 8];
        self.ghr_next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(spp: &mut Spp, addrs: &[u64]) -> Vec<Vec<u64>> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let mut out = Vec::new();
                spp.on_access(&MemAccess::load(i as u64, 0, a), false, &mut out);
                out
            })
            .collect()
    }

    #[test]
    fn learns_unit_stride_within_page() {
        let mut spp = Spp::new();
        // Several pages of unit-stride traffic to train the PT.
        let mut addrs = Vec::new();
        for p in 0..20u64 {
            for b in 0..BLOCKS_PER_PAGE {
                addrs.push((0x40 + p) * 4096 + b * 64);
            }
        }
        let outs = feed(&mut spp, &addrs);
        // In the last page, predictions should target the next blocks.
        let n = outs.len();
        let mut correct = 0;
        for i in n - 60..n - 1 {
            if outs[i].contains(&addrs[i + 1]) {
                correct += 1;
            }
        }
        assert!(correct > 40, "correct={correct}");
    }

    #[test]
    fn lookahead_issues_multiple_depths() {
        let mut spp = Spp::new();
        let mut addrs = Vec::new();
        for p in 0..30u64 {
            for b in 0..BLOCKS_PER_PAGE {
                addrs.push((0x100 + p) * 4096 + b * 64);
            }
        }
        let outs = feed(&mut spp, &addrs);
        let deep = outs.iter().rev().take(100).filter(|o| o.len() >= 2).count();
        assert!(
            deep > 50,
            "path confidence should allow depth ≥2, deep={deep}"
        );
    }

    #[test]
    fn learns_stride_2_pattern() {
        let mut spp = Spp::new();
        let mut addrs = Vec::new();
        for p in 0..40u64 {
            for b in (0..BLOCKS_PER_PAGE).step_by(2) {
                addrs.push((0x200 + p) * 4096 + b * 64);
            }
        }
        let outs = feed(&mut spp, &addrs);
        let n = outs.len();
        let mut correct = 0;
        for i in n - 30..n - 1 {
            if outs[i].contains(&addrs[i + 1]) {
                correct += 1;
            }
        }
        assert!(correct > 20, "correct={correct}");
    }

    #[test]
    fn ghr_recovers_cross_page_streams() {
        let mut spp = Spp::new();
        // One long stream crossing many pages; after training, the first
        // access in a new page should immediately predict (signature
        // recovered from GHR rather than restarting cold).
        let addrs: Vec<u64> = (0..BLOCKS_PER_PAGE * 30)
            .map(|i| 0x5_0000_0000 + i * 64)
            .collect();
        let outs = feed(&mut spp, &addrs);
        // Find accesses that start a page (offset 0) late in the trace.
        let mut predicted_at_page_start = 0;
        let mut page_starts = 0;
        for (i, &a) in addrs
            .iter()
            .enumerate()
            .skip(addrs.len() - 5 * BLOCKS_PER_PAGE as usize)
        {
            if (a >> BLOCK_BITS) & (BLOCKS_PER_PAGE - 1) == 0 {
                page_starts += 1;
                if !outs[i].is_empty() {
                    predicted_at_page_start += 1;
                }
            }
        }
        assert!(page_starts >= 4);
        assert!(
            predicted_at_page_start >= page_starts / 2,
            "{predicted_at_page_start}/{page_starts}"
        );
    }

    #[test]
    fn no_predictions_on_random_accesses() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut spp = Spp::new();
        let addrs: Vec<u64> = (0..20_000)
            .map(|_| rng.gen_range(0x1_0000u64..0x1_0000_0000) & !63)
            .collect();
        let outs = feed(&mut spp, &addrs);
        // Random traffic should yield few confident paths.
        let suggested: usize = outs.iter().rev().take(5000).map(|o| o.len()).sum();
        assert!(suggested < 2500, "suggested={suggested}");
    }

    #[test]
    fn counter_saturation_keeps_ratios() {
        let mut spp = Spp::with_params(64, 64, 0.25, 2);
        // Hammer one signature far past saturation.
        for _ in 0..1000 {
            spp.train(5, 1);
        }
        let (d, c) = spp.best_delta(5).unwrap();
        assert_eq!(d, 1);
        assert!(c > 0.9, "confidence should stay high after halving, c={c}");
    }

    #[test]
    fn delta_encoding_distinguishes_signs() {
        assert_ne!(encode_delta(3), encode_delta(-3));
        assert_eq!(encode_delta(3), 3);
        assert_eq!(encode_delta(-3), 0x43);
    }
}
