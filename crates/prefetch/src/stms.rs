//! Sampled Temporal Memory Streaming (STMS) — Wenisch et al., HPCA 2009.
//!
//! STMS records the *global* miss sequence in a circular history buffer
//! (conceptually held off-chip) and an index table mapping each miss
//! address to its most recent position in the history. On a miss, the
//! index is consulted and the sequence following the previous occurrence
//! is replayed as prefetches. Table I lists STMS as a canonical temporal
//! prefetcher; it differs from ISB (no PC localization) and from Domino
//! (arbitrary-length replay from a single-address match rather than
//! one/two-miss matching).

use crate::traits::{PredictionKind, Prefetcher};
use resemble_trace::record::{block_addr, block_of};
use resemble_trace::util::FxHashMap;

/// STMS prefetcher.
#[derive(Debug, Clone)]
pub struct Stms {
    /// circular global miss history (block numbers)
    history: Vec<u64>,
    head: usize,
    filled: bool,
    /// block → most recent history position
    index: FxHashMap<u64, usize>,
    degree: usize,
}

impl Stms {
    /// STMS with a 512K-entry history (off-chip metadata scale, like the
    /// original's DRAM-resident history) and degree 4.
    pub fn new() -> Self {
        Self::with_params(1 << 19, 4)
    }

    /// Parameterized constructor.
    pub fn with_params(history_len: usize, degree: usize) -> Self {
        assert!(history_len > 1 && degree >= 1);
        Self {
            history: vec![u64::MAX; history_len],
            head: 0,
            filled: false,
            index: FxHashMap::default(),
            degree,
        }
    }

    #[inline]
    fn next_pos(&self, pos: usize) -> usize {
        (pos + 1) % self.history.len()
    }
}

impl Default for Stms {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Stms {
    fn name(&self) -> &'static str {
        "stms"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Temporal
    }

    fn on_access(&mut self, access: &resemble_trace::MemAccess, hit: bool, out: &mut Vec<u64>) {
        if hit {
            return; // STMS observes the miss stream only
        }
        let b = block_of(access.addr);
        // Replay the sequence that followed the previous occurrence.
        if let Some(&pos) = self.index.get(&b) {
            let mut p = self.next_pos(pos);
            for _ in 0..self.degree {
                let nb = self.history[p];
                if nb == u64::MAX || p == self.head {
                    break;
                }
                if nb != b {
                    out.push(block_addr(nb));
                }
                p = self.next_pos(p);
            }
        }
        // Record this miss.
        let old = self.history[self.head];
        if old != u64::MAX {
            // The overwritten entry's index may point here; drop it if so.
            if self.index.get(&old) == Some(&self.head) {
                self.index.remove(&old);
            }
            self.filled = true;
        }
        self.history[self.head] = b;
        self.index.insert(b, self.head);
        self.head = self.next_pos(self.head);
    }

    fn budget_bytes(&self) -> usize {
        // On-chip: index cache + stream buffers; history is off-chip.
        8 * 1024
    }

    fn max_degree(&self) -> usize {
        self.degree
    }

    fn reset(&mut self) {
        self.history.fill(u64::MAX);
        self.head = 0;
        self.filled = false;
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resemble_trace::MemAccess;

    fn feed(p: &mut Stms, addrs: &[u64]) -> Vec<Vec<u64>> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let mut out = Vec::new();
                p.on_access(&MemAccess::load(i as u64, 0, a), false, &mut out);
                out
            })
            .collect()
    }

    #[test]
    fn replays_global_sequence() {
        let ring: Vec<u64> = vec![0x1_000, 0x9_000, 0x5_000, 0xc_000, 0x3_000];
        let seq: Vec<u64> = (0..40).map(|i| ring[i % 5]).collect();
        let mut s = Stms::new();
        let outs = feed(&mut s, &seq);
        // After the first lap, each access should replay the following
        // ring elements in order.
        let mut correct = 0;
        for i in 6..seq.len() - 1 {
            if outs[i].first() == Some(&block_addr(block_of(seq[i + 1]))) {
                correct += 1;
            }
        }
        assert!(correct > 28, "correct={correct}");
    }

    #[test]
    fn replays_up_to_degree() {
        let ring: Vec<u64> = (0..8u64).map(|i| 0x10_000 + i * 0x5_000).collect();
        let seq: Vec<u64> = (0..40).map(|i| ring[i % 8]).collect();
        let mut s = Stms::with_params(1024, 4);
        let outs = feed(&mut s, &seq);
        let last = outs.last().unwrap();
        assert_eq!(last.len(), 4, "{last:?}");
    }

    #[test]
    fn hits_are_ignored() {
        let mut s = Stms::new();
        let mut out = Vec::new();
        s.on_access(&MemAccess::load(0, 0, 0x1000), true, &mut out);
        s.on_access(&MemAccess::load(1, 0, 0x2000), false, &mut out);
        // Only one miss recorded: no prediction possible, no link 1000→2000.
        out.clear();
        s.on_access(&MemAccess::load(2, 0, 0x1000), false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn history_wraparound_is_safe() {
        let mut s = Stms::with_params(8, 2);
        let seq: Vec<u64> = (0..100u64).map(|i| (i % 16) * 0x1000).collect();
        let outs = feed(&mut s, &seq);
        assert_eq!(outs.len(), 100); // no panic; predictions bounded
        assert!(outs.iter().all(|o| o.len() <= 2));
    }

    #[test]
    fn reset_clears() {
        let ring: Vec<u64> = vec![0x1_000, 0x9_000, 0x5_000];
        let seq: Vec<u64> = (0..12).map(|i| ring[i % 3]).collect();
        let mut s = Stms::new();
        feed(&mut s, &seq);
        s.reset();
        let outs = feed(&mut s, &seq[..3]);
        assert!(outs.iter().all(|o| o.is_empty()));
    }
}
