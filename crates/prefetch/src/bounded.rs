//! Capacity-bounded hash map approximating a hardware table with FIFO
//! replacement. Temporal prefetchers (ISB, Domino) have fixed metadata
//! budgets (Table II), so their correlation tables must evict; a FIFO over
//! insertion order is the standard cheap approximation.

use resemble_trace::util::FxHashMap;
use std::collections::VecDeque;

/// Hash map holding at most `capacity` entries; inserting beyond capacity
/// evicts the oldest-inserted live key (FIFO). Re-inserting an existing key
/// updates its value without refreshing its age.
#[derive(Debug, Clone)]
pub struct BoundedMap<V> {
    map: FxHashMap<u64, V>,
    order: VecDeque<u64>,
    capacity: usize,
}

impl<V> BoundedMap<V> {
    /// Create a map bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            map: FxHashMap::default(),
            order: VecDeque::with_capacity(capacity + 1),
            capacity,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fetch a value.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.map.get(&key)
    }

    /// Insert or update; evicts the oldest entry when full.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.map.insert(key, value).is_none() {
            self.order.push_back(key);
            while self.map.len() > self.capacity {
                // Lazy deletion: queued keys may already have been removed.
                if let Some(old) = self.order.pop_front() {
                    if old != key {
                        self.map.remove(&old);
                    } else {
                        self.order.push_back(old);
                    }
                } else {
                    break;
                }
            }
        }
    }

    /// Remove a key.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        self.map.remove(&key)
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_fifo_beyond_capacity() {
        let mut m = BoundedMap::new(3);
        for k in 0..5u64 {
            m.insert(k, k * 10);
        }
        assert_eq!(m.len(), 3);
        assert!(m.get(0).is_none() && m.get(1).is_none());
        assert_eq!(m.get(4), Some(&40));
    }

    #[test]
    fn update_does_not_grow() {
        let mut m = BoundedMap::new(2);
        m.insert(1, 1);
        m.insert(1, 2);
        m.insert(1, 3);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(1), Some(&3));
        m.insert(2, 2);
        m.insert(3, 3);
        assert_eq!(m.len(), 2);
        assert!(m.get(1).is_none(), "1 was oldest");
    }

    #[test]
    fn remove_and_reinsert() {
        let mut m = BoundedMap::new(2);
        m.insert(1, 1);
        assert_eq!(m.remove(1), Some(1));
        assert!(m.is_empty());
        m.insert(2, 2);
        m.insert(3, 3);
        m.insert(4, 4);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn capacity_one() {
        let mut m = BoundedMap::new(1);
        m.insert(1, 1);
        m.insert(2, 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(2), Some(&2));
    }
}
