//! Classic PC-indexed stride prefetcher (reference point / ensemble member
//! beyond the paper's four, useful for ablations).

use crate::traits::{PredictionKind, Prefetcher};
use resemble_trace::record::{block_align, block_of, BLOCK_SIZE};
use resemble_trace::MemAccess;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    tag: u64,
    last_block: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// Stride prefetcher with a direct-mapped PC table and 2-bit confidence.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<Entry>,
    degree: usize,
    threshold: u8,
}

impl StridePrefetcher {
    /// `table_size` entries (power of two), prefetch `degree` strides ahead.
    pub fn new(table_size: usize, degree: usize) -> Self {
        assert!(table_size.is_power_of_two() && table_size > 0);
        assert!(degree >= 1);
        Self {
            table: vec![Entry::default(); table_size],
            degree,
            threshold: 2,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as usize & (self.table.len() - 1)
    }
}

impl Default for StridePrefetcher {
    fn default() -> Self {
        Self::new(256, 2)
    }
}

impl Prefetcher for StridePrefetcher {
    fn name(&self) -> &'static str {
        "stride"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Spatial
    }

    fn on_access(&mut self, access: &MemAccess, _hit: bool, out: &mut Vec<u64>) {
        let idx = self.index(access.pc);
        let block = block_of(access.addr);
        let e = &mut self.table[idx];
        if !e.valid || e.tag != access.pc {
            *e = Entry {
                tag: access.pc,
                last_block: block,
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return;
        }
        let stride = block as i64 - e.last_block as i64;
        if stride == 0 {
            return; // same-block re-reference carries no stride signal
        }
        let matched = stride == e.stride;
        if matched {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            if e.confidence > 0 {
                e.confidence -= 1;
            }
            if e.confidence == 0 {
                e.stride = stride;
            }
        }
        e.last_block = block;
        // Predict only when this access itself confirmed the stride: a
        // mismatching access is a break, and prefetching through it wastes
        // bandwidth even if confidence is still warm.
        if matched && e.confidence >= self.threshold && e.stride != 0 {
            let base = block_align(access.addr);
            for d in 1..=self.degree as i64 {
                let target = base as i64 + d * e.stride * BLOCK_SIZE as i64;
                if target > 0 {
                    out.push(target as u64);
                }
            }
        }
    }

    fn budget_bytes(&self) -> usize {
        // tag(8) + last(8) + stride(8) + conf(1) per entry, rounded.
        self.table.len() * 25
    }

    fn max_degree(&self) -> usize {
        self.degree
    }

    fn reset(&mut self) {
        self.table.fill(Entry::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(p: &mut StridePrefetcher, pc: u64, addrs: &[u64]) -> Vec<Vec<u64>> {
        let mut all = Vec::new();
        for (i, &a) in addrs.iter().enumerate() {
            let mut out = Vec::new();
            p.on_access(&MemAccess::load(i as u64, pc, a), false, &mut out);
            all.push(out);
        }
        all
    }

    #[test]
    fn learns_constant_stride() {
        let mut p = StridePrefetcher::new(64, 1);
        let addrs: Vec<u64> = (0..6).map(|i| 0x10000 + i * 128).collect(); // stride 2 blocks
        let outs = run(&mut p, 0x400, &addrs);
        // After warmup (alloc + 2 confirms) predictions appear.
        assert!(outs[..3].iter().all(|o| o.is_empty()));
        let last = outs.last().unwrap();
        assert_eq!(last, &vec![0x10000 + 5 * 128 + 128]);
    }

    #[test]
    fn confidence_resets_on_stride_change() {
        let mut p = StridePrefetcher::new(64, 1);
        let mut addrs: Vec<u64> = (0..5).map(|i| 0x20000 + i * 64).collect(); // stride 1
        addrs.push(0x90000); // break
        addrs.push(0x90100); // stride 4 now
        addrs.push(0x90200);
        let outs = run(&mut p, 0x500, &addrs);
        assert!(!outs[4].is_empty(), "trained before break");
        assert!(outs[5].is_empty(), "the break access must not prefetch");
        assert!(
            outs[6].is_empty() && outs[7].is_empty(),
            "must retrain after break"
        );
    }

    #[test]
    fn distinct_pcs_distinct_streams() {
        let mut p = StridePrefetcher::new(64, 1);
        // Interleave two PCs with different strides; both should train.
        let mut trained = [false, false];
        for i in 0..20u64 {
            let (pc, addr, which) = if i % 2 == 0 {
                (0x400, 0x10000 + (i / 2) * 64, 0)
            } else {
                (0x600, 0x80000 + (i / 2) * 256, 1)
            };
            let mut out = Vec::new();
            p.on_access(&MemAccess::load(i, pc, addr), false, &mut out);
            if !out.is_empty() {
                trained[which] = true;
            }
        }
        assert!(trained[0] && trained[1]);
    }

    #[test]
    fn negative_stride_supported() {
        let mut p = StridePrefetcher::new(64, 1);
        let addrs: Vec<u64> = (0..6).map(|i| 0x50000 - i * 64).collect();
        let outs = run(&mut p, 0x700, &addrs);
        let last = outs.last().unwrap();
        assert_eq!(last, &vec![0x50000 - 5 * 64 - 64]);
    }

    #[test]
    fn reset_clears_training() {
        let mut p = StridePrefetcher::new(64, 1);
        let addrs: Vec<u64> = (0..6).map(|i| 0x10000 + i * 64).collect();
        run(&mut p, 0x400, &addrs);
        p.reset();
        let mut out = Vec::new();
        p.on_access(
            &MemAccess::load(99, 0x400, 0x10000 + 6 * 64),
            false,
            &mut out,
        );
        assert!(out.is_empty());
    }
}
