//! Voyager-like neural temporal prefetcher (substitute, see DESIGN.md §1).
//!
//! Voyager (Shi et al., ASPLOS 2021) is a hierarchical LSTM that predicts
//! the next access from PC-localized history over a learned candidate
//! space. Training a full LSTM online is neither feasible in hardware nor
//! needed for the role Voyager plays in the paper's §VI-B (a *powerful
//! learned temporal* input to the ensemble). Our substitute keeps the
//! structure that matters: a per-(PC, address) candidate table remembers
//! up to four observed successors (the "vocabulary"), and an online-trained
//! MLP scores the candidates from hashed context features (the "model"),
//! picking the successor to prefetch. It is strong on irregular repetitive
//! traces, weak on streams — exactly Voyager's profile in Fig 12.

use crate::bounded::BoundedMap;
use crate::traits::{PredictionKind, Prefetcher};
use resemble_nn::{Activation, GradBuffer, Mlp, Scratch, Sgd};
use resemble_trace::record::{block_addr, block_of};
use resemble_trace::MemAccess;

const SLOTS: usize = 4;
/// features: hash(prev block), hash(pc), 4 counts, 4 recencies
const IN_DIM: usize = 2 + 2 * SLOTS;
const HASH_BITS: u32 = 16;

#[derive(Debug, Clone, Copy, Default)]
struct Cand {
    block: u64,
    count: u16,
    last_seen: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct CandSet {
    slots: [Cand; SLOTS],
}

#[derive(Debug, Clone)]
struct Pending {
    input: [f32; IN_DIM],
    blocks: [u64; SLOTS],
}

/// Neural temporal prefetcher (Voyager stand-in).
pub struct NeuralTemporalPrefetcher {
    succ: BoundedMap<CandSet>,
    last_per_pc: BoundedMap<u64>,
    pending: BoundedMap<Pending>,
    net: Mlp,
    scratch: Scratch,
    grads: GradBuffer,
    opt: Sgd,
    tick: u32,
    train_interval: u32,
    since_train: u32,
    degree: usize,
}

#[inline]
fn fold_hash(x: u64) -> f32 {
    // 16-bit fold of the value, normalized to [0, 1).
    let h = (x ^ (x >> 16) ^ (x >> 32) ^ (x >> 48)) & ((1 << HASH_BITS) - 1);
    h as f32 / (1u64 << HASH_BITS) as f32
}

#[inline]
fn ctx_key(pc: u64, block: u64) -> u64 {
    pc.rotate_left(17) ^ block.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl NeuralTemporalPrefetcher {
    /// Default configuration: 256K-entry candidate table (Voyager's
    /// vocabulary is memory-backed and large), 32-unit hidden layer, SGD
    /// lr 0.05, trained every 8 resolved predictions.
    pub fn new(seed: u64) -> Self {
        Self::with_params(seed, 1 << 18, 32, 0.05, 8, 2)
    }

    /// Parameterized constructor.
    pub fn with_params(
        seed: u64,
        table_entries: usize,
        hidden: usize,
        lr: f32,
        train_interval: u32,
        degree: usize,
    ) -> Self {
        assert!(degree >= 1);
        let net = Mlp::new(&[IN_DIM, hidden, SLOTS], Activation::Relu, seed);
        let scratch = net.make_scratch();
        let grads = net.make_grad_buffer();
        Self {
            succ: BoundedMap::new(table_entries),
            last_per_pc: BoundedMap::new(1024),
            pending: BoundedMap::new(1024),
            net,
            scratch,
            grads,
            opt: Sgd::new(lr),
            tick: 0,
            train_interval,
            since_train: 0,
            degree,
        }
    }

    /// Parameter count of the scoring network.
    pub fn param_count(&self) -> usize {
        self.net.param_count()
    }

    fn features(&self, pc: u64, block: u64, set: &CandSet, tick: u32) -> [f32; IN_DIM] {
        let mut x = [0.0f32; IN_DIM];
        x[0] = fold_hash(block);
        x[1] = fold_hash(pc);
        let total: f32 = set
            .slots
            .iter()
            .map(|c| c.count as f32)
            .sum::<f32>()
            .max(1.0);
        for (i, c) in set.slots.iter().enumerate() {
            x[2 + i] = c.count as f32 / total;
            let age = tick.saturating_sub(c.last_seen) as f32;
            x[2 + SLOTS + i] = if c.count > 0 {
                1.0 / (1.0 + age / 64.0)
            } else {
                0.0
            };
        }
        x
    }

    /// Record observed successor `next` for context `(pc, prev)`.
    fn learn_successor(&mut self, pc: u64, prev: u64, next: u64) {
        let key = ctx_key(pc, prev);
        let mut set = self.succ.get(key).copied().unwrap_or_default();
        if let Some(c) = set
            .slots
            .iter_mut()
            .find(|c| c.count > 0 && c.block == next)
        {
            c.count = c.count.saturating_add(1);
            c.last_seen = self.tick;
        } else {
            let weakest = set
                .slots
                .iter_mut()
                .min_by_key(|c| c.count)
                .expect("SLOTS > 0");
            *weakest = Cand {
                block: next,
                count: 1,
                last_seen: self.tick,
            };
        }
        self.succ.insert(key, set);
    }

    /// Train the scorer on a resolved prediction context.
    fn train_on(&mut self, pending: &Pending, actual: u64) {
        let y = self.net.forward(&pending.input, &mut self.scratch).to_vec();
        let mut grad = [0.0f32; SLOTS];
        for i in 0..SLOTS {
            let target = if pending.blocks[i] == actual && actual != 0 {
                1.0
            } else {
                0.0
            };
            grad[i] = y[i] - target;
        }
        self.net.backward(&mut self.scratch, &grad, &mut self.grads);
        self.since_train += 1;
        if self.since_train >= self.train_interval {
            self.net.apply_grads(&mut self.grads, &mut self.opt);
            self.since_train = 0;
        }
    }
}

impl Prefetcher for NeuralTemporalPrefetcher {
    fn name(&self) -> &'static str {
        "voyager"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Temporal
    }

    fn on_access(&mut self, access: &MemAccess, _hit: bool, out: &mut Vec<u64>) {
        let b = block_of(access.addr);
        self.tick += 1;
        // Resolve the previous context for this PC.
        if let Some(&prev) = self.last_per_pc.get(access.pc) {
            if prev != b {
                self.learn_successor(access.pc, prev, b);
                if let Some(p) = self.pending.remove(access.pc) {
                    self.train_on(&p, b);
                }
            }
        }
        self.last_per_pc.insert(access.pc, b);

        // Predict the next block for this PC from the candidate table.
        let key = ctx_key(access.pc, b);
        if let Some(&set) = self.succ.get(key) {
            let input = self.features(access.pc, b, &set, self.tick);
            let scores = self.net.forward(&input, &mut self.scratch);
            // argmax over populated slots
            let mut best: Option<(usize, f32)> = None;
            for (i, c) in set.slots.iter().enumerate() {
                if c.count == 0 {
                    continue;
                }
                if best.map(|(_, s)| scores[i] > s).unwrap_or(true) {
                    best = Some((i, scores[i]));
                }
            }
            let mut blocks = [0u64; SLOTS];
            for (i, c) in set.slots.iter().enumerate() {
                blocks[i] = if c.count > 0 { c.block } else { 0 };
            }
            self.pending.insert(access.pc, Pending { input, blocks });
            if let Some((i, _)) = best {
                out.push(block_addr(set.slots[i].block));
                // Chain further along the most-counted successors.
                let mut cur = set.slots[i].block;
                for _ in 1..self.degree {
                    let k2 = ctx_key(access.pc, cur);
                    let Some(&s2) = self.succ.get(k2) else { break };
                    let Some(c2) = s2
                        .slots
                        .iter()
                        .filter(|c| c.count > 0)
                        .max_by_key(|c| c.count)
                    else {
                        break;
                    };
                    out.push(block_addr(c2.block));
                    cur = c2.block;
                }
            }
        }
    }

    fn budget_bytes(&self) -> usize {
        // Scorer (16-bit fixed point) + candidate table.
        self.net.param_count() * 2 + self.succ.capacity() * (SLOTS * 12 + 8)
    }

    fn max_degree(&self) -> usize {
        self.degree
    }

    fn reset(&mut self) {
        self.succ.clear();
        self.last_per_pc.clear();
        self.pending.clear();
        self.grads.clear();
        self.tick = 0;
        self.since_train = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(p: &mut NeuralTemporalPrefetcher, seq: &[(u64, u64)]) -> Vec<Vec<u64>> {
        seq.iter()
            .enumerate()
            .map(|(i, &(pc, a))| {
                let mut out = Vec::new();
                p.on_access(&MemAccess::load(i as u64, pc, a), false, &mut out);
                out
            })
            .collect()
    }

    #[test]
    fn learns_repeated_irregular_sequence() {
        let ring: Vec<u64> = vec![0x12_3000, 0xff_0140, 0x3a_bc80, 0x90_00c0, 0x55_5540];
        let seq: Vec<(u64, u64)> = (0..200).map(|i| (7u64, ring[i % 5])).collect();
        let mut p = NeuralTemporalPrefetcher::new(1);
        let outs = feed(&mut p, &seq);
        let mut correct = 0;
        for i in 100..199 {
            if outs[i].contains(&block_addr(block_of(seq[i + 1].1))) {
                correct += 1;
            }
        }
        assert!(correct > 80, "correct={correct}/99");
    }

    #[test]
    fn scorer_disambiguates_biased_successors() {
        // Context A is followed by B 80% of the time, C 20%: the counted
        // candidates + scorer should settle on B.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let (a, b, c) = (0x10_0000u64, 0x20_0000u64, 0x30_0000u64);
        let mut seq = Vec::new();
        for _ in 0..300 {
            seq.push((1u64, a));
            seq.push((1u64, if rng.gen_bool(0.8) { b } else { c }));
        }
        let mut p = NeuralTemporalPrefetcher::new(2);
        let outs = feed(&mut p, &seq);
        // Count predictions of B vs C following late occurrences of A.
        let (mut pb, mut pc_) = (0, 0);
        for i in (400..seq.len()).filter(|&i| seq[i].1 == a) {
            if outs[i].contains(&block_addr(block_of(b))) {
                pb += 1;
            }
            if outs[i].contains(&block_addr(block_of(c))) {
                pc_ += 1;
            }
        }
        assert!(pb > pc_, "pb={pb} pc={pc_}");
    }

    #[test]
    fn no_prediction_for_cold_context() {
        let mut p = NeuralTemporalPrefetcher::new(3);
        let outs = feed(&mut p, &[(1, 0x1000), (1, 0x2000), (1, 0x4000)]);
        assert!(outs[0].is_empty());
    }

    #[test]
    fn reset_clears_state() {
        let ring: Vec<u64> = vec![0x1000, 0x9000, 0x5000];
        let seq: Vec<(u64, u64)> = (0..60).map(|i| (1u64, ring[i % 3])).collect();
        let mut p = NeuralTemporalPrefetcher::new(4);
        feed(&mut p, &seq);
        p.reset();
        let outs = feed(&mut p, &seq[..3]);
        assert!(outs.iter().all(|o| o.is_empty()));
    }

    #[test]
    fn budget_is_reported() {
        let p = NeuralTemporalPrefetcher::new(0);
        assert!(p.budget_bytes() > 0);
        assert!(p.param_count() > 0);
    }
}
