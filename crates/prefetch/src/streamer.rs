//! Stream prefetcher: detects monotone access runs within regions and runs
//! ahead of them (the classic L2 streamer; another reference ensemble
//! member for ablations).

use crate::traits::{PredictionKind, Prefetcher};
use resemble_trace::record::{block_of, page_of, BLOCK_SIZE};
use resemble_trace::MemAccess;

#[derive(Debug, Clone, Copy, Default)]
struct StreamEntry {
    page: u64,
    last_block: u64,
    /// +1 forward, -1 backward, 0 untrained.
    dir: i8,
    /// consecutive accesses confirming the direction
    confirmations: u8,
    valid: bool,
}

/// Region-based stream detector with direction confirmation.
#[derive(Debug, Clone)]
pub struct Streamer {
    entries: Vec<StreamEntry>,
    degree: usize,
    next_victim: usize,
}

impl Streamer {
    /// Track up to `n_streams` concurrent regions, prefetching `degree`
    /// blocks ahead once a direction is confirmed twice.
    pub fn new(n_streams: usize, degree: usize) -> Self {
        assert!(n_streams > 0 && degree >= 1);
        Self {
            entries: vec![StreamEntry::default(); n_streams],
            degree,
            next_victim: 0,
        }
    }
}

impl Default for Streamer {
    fn default() -> Self {
        Self::new(16, 2)
    }
}

impl Prefetcher for Streamer {
    fn name(&self) -> &'static str {
        "streamer"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Spatial
    }

    fn on_access(&mut self, access: &MemAccess, _hit: bool, out: &mut Vec<u64>) {
        let page = page_of(access.addr);
        let block = block_of(access.addr);
        let slot = self.entries.iter().position(|e| e.valid && e.page == page);
        let slot = match slot {
            Some(s) => s,
            None => {
                let v = self.next_victim;
                self.next_victim = (self.next_victim + 1) % self.entries.len();
                self.entries[v] = StreamEntry {
                    page,
                    last_block: block,
                    dir: 0,
                    confirmations: 0,
                    valid: true,
                };
                return;
            }
        };
        let e = &mut self.entries[slot];
        let delta = block as i64 - e.last_block as i64;
        if delta == 0 {
            return;
        }
        let dir: i8 = if delta > 0 { 1 } else { -1 };
        if dir == e.dir {
            e.confirmations = e.confirmations.saturating_add(1);
        } else {
            e.dir = dir;
            e.confirmations = 0;
        }
        e.last_block = block;
        if e.confirmations >= 1 {
            for d in 1..=self.degree as i64 {
                let target = block as i64 + d * e.dir as i64;
                // Stay within the page (stream tables are page-bounded).
                if target >= 0 && page_of((target as u64) * BLOCK_SIZE) == page {
                    out.push(target as u64 * BLOCK_SIZE);
                }
            }
        }
    }

    fn budget_bytes(&self) -> usize {
        self.entries.len() * 18
    }

    fn max_degree(&self) -> usize {
        self.degree
    }

    fn reset(&mut self) {
        self.entries.fill(StreamEntry::default());
        self.next_victim = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resemble_trace::record::BLOCKS_PER_PAGE;

    #[test]
    fn detects_forward_stream() {
        let mut p = Streamer::new(4, 2);
        let mut out = Vec::new();
        for i in 0..5u64 {
            out.clear();
            p.on_access(&MemAccess::load(i, 0, 0x10_0000 + i * 64), false, &mut out);
        }
        assert_eq!(out, vec![0x10_0000 + 5 * 64, 0x10_0000 + 6 * 64]);
    }

    #[test]
    fn detects_backward_stream() {
        let mut p = Streamer::new(4, 1);
        let mut out = Vec::new();
        for i in 0..5u64 {
            out.clear();
            p.on_access(&MemAccess::load(i, 0, 0x10_0fc0 - i * 64), false, &mut out);
        }
        assert_eq!(out, vec![0x10_0fc0 - 5 * 64]);
    }

    #[test]
    fn stays_within_page() {
        let mut p = Streamer::new(4, 4);
        let mut out = Vec::new();
        // Walk to the last blocks of a page.
        let page_base = 0x20_0000u64;
        let last = page_base + (BLOCKS_PER_PAGE - 1) * 64;
        for (i, a) in [last - 128, last - 64, last].iter().enumerate() {
            out.clear();
            p.on_access(&MemAccess::load(i as u64, 0, *a), false, &mut out);
        }
        assert!(out.is_empty(), "no cross-page suggestions, got {out:?}");
    }

    #[test]
    fn random_page_hopping_trains_nothing() {
        let mut p = Streamer::new(2, 2);
        let mut out = Vec::new();
        for i in 0..20u64 {
            out.clear();
            p.on_access(
                &MemAccess::load(i, 0, (i * 7919) << 13), // new page each time
                false,
                &mut out,
            );
            assert!(out.is_empty());
        }
    }
}
