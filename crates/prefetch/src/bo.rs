//! Best-Offset (BO) prefetcher — Michaud, HPCA 2016.
//!
//! BO maintains a list of candidate offsets and scores them in rounds: for
//! each access to line `X` it checks whether `X - d` is present in the RR
//! table of recent requests — i.e. whether offset `d` "has made a hit in
//! recently requested accesses" (the ReSemble paper's phrasing). Following
//! Michaud's timeliness design, the RR table is filled at *fill
//! completion* time with `Y - D` (the base that triggered the fill of
//! `Y`), so an offset only scores when a prefetch issued with it would
//! have completed in time. When an offset's score reaches `SCORE_MAX` or
//! the round limit expires, the best-scoring offset becomes the active
//! prefetch offset; if even the best score is below `BAD_SCORE`,
//! prefetching turns off for the next learning phase. Predictions are
//! constrained within a page.
//!
//! Configuration per Table II: 1K-entry RR table, 4 KB total budget.

use crate::traits::{PredictionKind, Prefetcher};
use resemble_trace::record::{block_of, same_page, BLOCK_SIZE};
use resemble_trace::MemAccess;

/// Offsets with prime factors in {2, 3, 5} up to 256, per Michaud.
fn smooth_offsets(max: u64) -> Vec<i64> {
    let mut v: Vec<i64> = (1..=max)
        .filter(|&n| {
            let mut n = n;
            for p in [2u64, 3, 5] {
                while n % p == 0 {
                    n /= p;
                }
            }
            n == 1
        })
        .map(|n| n as i64)
        .collect();
    v.sort_unstable();
    v
}

/// Best-Offset prefetcher.
#[derive(Debug, Clone)]
pub struct BestOffset {
    offsets: Vec<i64>,
    scores: Vec<u32>,
    /// Direct-mapped RR table of recently requested block numbers.
    rr: Vec<u64>,
    test_idx: usize,
    round: u32,
    best_offset: i64,
    prefetch_on: bool,
    score_max: u32,
    round_max: u32,
    bad_score: u32,
    degree: usize,
}

impl BestOffset {
    /// BO with the paper's defaults: 1K-entry RR, SCORE_MAX 31,
    /// ROUND_MAX 100, BAD_SCORE 10, degree 1.
    pub fn new() -> Self {
        Self::with_params(1024, 31, 100, 10, 1)
    }

    /// Fully parameterized constructor (for ablations).
    pub fn with_params(
        rr_entries: usize,
        score_max: u32,
        round_max: u32,
        bad_score: u32,
        degree: usize,
    ) -> Self {
        assert!(rr_entries.is_power_of_two());
        assert!(degree >= 1);
        let offsets = smooth_offsets(256);
        let n = offsets.len();
        Self {
            offsets,
            scores: vec![0; n],
            rr: vec![u64::MAX; rr_entries],
            test_idx: 0,
            round: 0,
            best_offset: 1,
            prefetch_on: true,
            score_max,
            round_max,
            bad_score,
            degree,
        }
    }

    /// The currently selected prefetch offset, in blocks.
    pub fn current_offset(&self) -> i64 {
        self.best_offset
    }

    /// Whether the last learning phase turned prefetching on.
    pub fn is_prefetching(&self) -> bool {
        self.prefetch_on
    }

    #[inline]
    fn rr_slot(&self, block: u64) -> usize {
        // Fx-style multiply hash, low bits index.
        ((block.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as usize & (self.rr.len() - 1)
    }

    fn rr_insert(&mut self, block: u64) {
        let s = self.rr_slot(block);
        self.rr[s] = block;
    }

    fn rr_contains(&self, block: u64) -> bool {
        self.rr[self.rr_slot(block)] == block
    }

    fn end_phase(&mut self) {
        let (mut best_i, mut best_s) = (0, 0);
        for (i, &s) in self.scores.iter().enumerate() {
            if s > best_s {
                best_s = s;
                best_i = i;
            }
        }
        if best_s >= self.bad_score {
            self.best_offset = self.offsets[best_i];
            self.prefetch_on = true;
        } else {
            self.prefetch_on = false;
        }
        self.scores.fill(0);
        self.round = 0;
        self.test_idx = 0;
    }
}

impl Default for BestOffset {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for BestOffset {
    fn name(&self) -> &'static str {
        "bo"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Spatial
    }

    fn on_access(&mut self, access: &MemAccess, _hit: bool, out: &mut Vec<u64>) {
        let x = block_of(access.addr);
        // Learning: test one candidate offset per access.
        let d = self.offsets[self.test_idx];
        let base = x.wrapping_sub(d as u64);
        if self.rr_contains(base) {
            self.scores[self.test_idx] += 1;
            if self.scores[self.test_idx] >= self.score_max {
                self.end_phase();
            }
        }
        if self.test_idx + 1 == self.offsets.len() {
            self.test_idx = 0;
            self.round += 1;
            if self.round >= self.round_max {
                self.end_phase();
            }
        } else {
            self.test_idx += 1;
        }
        // Prediction: X + best offset, within the page.
        if self.prefetch_on {
            for k in 1..=self.degree as i64 {
                let target_block = x as i64 + k * self.best_offset;
                if target_block <= 0 {
                    continue;
                }
                let target = target_block as u64 * BLOCK_SIZE;
                if same_page(access.addr, target) {
                    out.push(target);
                }
            }
        }
    }

    fn on_prefetch_fill(&mut self, addr: u64) {
        // Timeliness: record Y − D so an offset only scores when a
        // prefetch issued with it would have been complete by now.
        let base = block_of(addr).wrapping_sub(self.best_offset as u64);
        self.rr_insert(base);
    }

    fn on_demand_fill(&mut self, addr: u64) {
        // Demand fills record the line itself: `X ∈ RR` at test time means
        // "X was requested long enough ago that its fill completed", so a
        // hit on candidate d certifies d as timely without feeding the
        // active offset back into the scores (which would make it drift).
        self.rr_insert(block_of(addr));
    }

    fn budget_bytes(&self) -> usize {
        // Table II: 1K-entry RR table + prefetch bits ≈ 4KB.
        4 * 1024
    }

    fn max_degree(&self) -> usize {
        self.degree
    }

    fn reset(&mut self) {
        self.rr.fill(u64::MAX);
        self.scores.fill(0);
        self.test_idx = 0;
        self.round = 0;
        self.best_offset = 1;
        self.prefetch_on = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Drive BO with a fill model: each access misses and its line fills
    /// `lat` accesses later (≈ memory latency at one access per cycle),
    /// while issued prefetches fill after the same delay.
    struct Harness {
        bo: BestOffset,
        demand_fills: VecDeque<(u64, u64)>, // (due_step, addr)
        pf_fills: VecDeque<(u64, u64)>,
        lat: u64,
        step: u64,
    }

    impl Harness {
        fn new(lat: u64) -> Self {
            Self {
                bo: BestOffset::new(),
                demand_fills: VecDeque::new(),
                pf_fills: VecDeque::new(),
                lat,
                step: 0,
            }
        }

        fn access(&mut self, addr: u64) -> Vec<u64> {
            self.step += 1;
            while self
                .demand_fills
                .front()
                .map(|&(d, _)| d <= self.step)
                .unwrap_or(false)
            {
                let (_, a) = self.demand_fills.pop_front().unwrap();
                self.bo.on_demand_fill(a);
            }
            while self
                .pf_fills
                .front()
                .map(|&(d, _)| d <= self.step)
                .unwrap_or(false)
            {
                let (_, a) = self.pf_fills.pop_front().unwrap();
                self.bo.on_prefetch_fill(a);
            }
            let mut out = Vec::new();
            self.bo
                .on_access(&MemAccess::load(self.step, 0, addr), false, &mut out);
            self.demand_fills.push_back((self.step + self.lat, addr));
            for &p in &out {
                self.pf_fills.push_back((self.step + self.lat, p));
            }
            out
        }
    }

    #[test]
    fn offset_list_is_smooth_and_sized() {
        let offs = smooth_offsets(256);
        assert_eq!(offs.len(), 52, "Michaud's list has 52 offsets up to 256");
        assert!(offs.contains(&1) && offs.contains(&256) && !offs.contains(&7));
    }

    #[test]
    fn learns_timely_offset_on_stream() {
        // Unit stream, one access per step, fills land 20 steps later: a
        // timely offset must be >= 20 blocks; BO should settle on one and
        // keep prefetching within the page.
        let mut h = Harness::new(20);
        let mut predicted = 0u64;
        for i in 0..60_000u64 {
            let addr = 0x4000_0000 + i * 64;
            let out = h.access(addr);
            if i > 40_000 && !out.is_empty() {
                predicted += 1;
            }
        }
        assert!(h.bo.is_prefetching(), "offset={}", h.bo.current_offset());
        assert!(
            h.bo.current_offset() >= 20,
            "offset must be timely (>= fill latency): {}",
            h.bo.current_offset()
        );
        assert!(predicted > 10_000, "predicted={predicted}");
    }

    #[test]
    fn short_latency_allows_small_offsets() {
        let mut h = Harness::new(2);
        for i in 0..60_000u64 {
            h.access(0x4000_0000 + i * 64);
        }
        assert!(h.bo.is_prefetching());
        assert!(
            (2..=16).contains(&h.bo.current_offset()),
            "{}",
            h.bo.current_offset()
        );
    }

    #[test]
    fn turns_off_on_random_traffic() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut h = Harness::new(20);
        let mut suggested_late = 0;
        for i in 0..30_000u64 {
            let addr: u64 = rng.gen_range(0x10_0000u64..0x40_0000_0000) & !63;
            let out = h.access(addr);
            if i > 20_000 && !out.is_empty() {
                suggested_late += 1;
            }
        }
        assert!(
            !h.bo.is_prefetching() || suggested_late < 2000,
            "BO should throttle on random traffic (on={}, late={})",
            h.bo.is_prefetching(),
            suggested_late
        );
    }

    #[test]
    fn predictions_stay_in_page() {
        let mut h = Harness::new(10);
        for i in 0..20_000u64 {
            let addr = 0x100_0000 + i * 64;
            let out = h.access(addr);
            for &p in &out {
                assert!(
                    same_page(addr, p),
                    "prefetch {p:#x} crosses page from {addr:#x}"
                );
            }
        }
    }

    #[test]
    fn reset_restores_defaults() {
        let mut h = Harness::new(20);
        for i in 0..50_000u64 {
            h.access(0x100_0000 + i * 256);
        }
        h.bo.reset();
        assert_eq!(h.bo.current_offset(), 1);
        assert!(h.bo.is_prefetching());
    }
}
