//! Backend-sweep bit-equality property test.
//!
//! For random network shapes, batch sizes, activations, and inputs,
//! every SIMD backend available on this host must produce byte-for-byte
//! the same forward activations and backward gradient sums as the
//! scalar fallback — the "bit-identical by construction" contract of
//! `resemble_nn::simd`. Backends whose ISA the CPU lacks are skipped at
//! runtime and logged once, so a green run on (say) a pre-AVX2 host is
//! visibly narrower rather than silently complete.

use proptest::prelude::*;
use resemble_nn::simd::{self, KernelBackend};
use resemble_nn::{Activation, Matrix, Mlp};
use std::sync::Once;

/// Log once which backends this host cannot run, so CI output shows the
/// sweep's actual coverage instead of silently passing a narrower test.
/// Iterates `KernelBackend::ALL` so a newly added tier is reported
/// without touching this test.
fn log_coverage() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let avail = simd::available();
        for be in KernelBackend::ALL {
            if !avail.contains(&be) {
                eprintln!("backend_sweep: SKIPPING {be} (not available on this host)");
            }
        }
        eprintln!("backend_sweep: comparing backends {avail:?}");
    });
}

/// One forward + backward minibatch pass under `backend`, returning the
/// raw bit patterns of the batched outputs and of the accumulated
/// gradient sums (flattened in parameter order).
fn run_pass(
    backend: KernelBackend,
    sizes: &[usize],
    act: Activation,
    seed: u64,
    xs: &Matrix,
) -> (Vec<u32>, Vec<u32>) {
    let _guard = simd::force(backend);
    let net = Mlp::new(sizes, act, seed);
    let mut scratch = net.make_batch_scratch(xs.rows());
    let mut grads = net.make_grad_buffer();
    let out = net.forward_batch(xs, &mut scratch).clone();
    // L = 0.5 * sum(y^2) gives dL/dy = y: a deterministic out-grad that
    // exercises backward with the full range of forward outputs.
    net.backward_batch(&mut scratch, &out, &mut grads);
    let out_bits = out.as_slice().iter().map(|v| v.to_bits()).collect();
    let grad_bits = grads.flat_sums().iter().map(|v| v.to_bits()).collect();
    (out_bits, grad_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every available backend matches scalar bitwise on forward and
    /// backward, across random shapes, batch sizes, and activations.
    #[test]
    fn all_backends_match_scalar_bitwise(
        input_dim in 1usize..20,
        hidden in 1usize..48,
        output_dim in 1usize..12,
        batch in 1usize..24,
        act_sel in 0u8..4,
        seed in any::<u64>(),
        data in proptest::collection::vec(-2.5f32..2.5, 20 * 24),
    ) {
        log_coverage();
        let act = match act_sel {
            0 => Activation::Relu,
            1 => Activation::Tanh,
            2 => Activation::Sigmoid,
            _ => Activation::Identity,
        };
        let sizes = [input_dim, hidden, output_dim];
        let xs = Matrix::from_fn(batch, input_dim, |r, c| data[r * input_dim + c]);
        let reference = run_pass(KernelBackend::Scalar, &sizes, act, seed, &xs);
        for &be in simd::available() {
            if be == KernelBackend::Scalar {
                continue;
            }
            let got = run_pass(be, &sizes, act, seed, &xs);
            prop_assert_eq!(
                &got.0,
                &reference.0,
                "{} forward bits differ from scalar ({:?}, act {:?}, batch {})",
                be,
                sizes,
                act,
                batch
            );
            prop_assert_eq!(
                &got.1,
                &reference.1,
                "{} gradient bits differ from scalar ({:?}, act {:?}, batch {})",
                be,
                sizes,
                act,
                batch
            );
        }
    }
}
