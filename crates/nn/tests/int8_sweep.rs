//! Int8 cross-backend byte-equality sweep.
//!
//! The quantized serving datapath promises the same determinism contract
//! as the float kernels, but by a different argument: the int8 GEMM
//! accumulates in exact i32 arithmetic, so any summation order gives the
//! same bytes (see `resemble_nn::simd` docs). This sweep pins it: for
//! random network shapes, batches, activations, and inputs, the
//! `QuantizedMlp` forward pass must produce byte-for-byte identical
//! output on every available backend, across reruns, and across
//! independently re-quantized copies of the same network — plus a
//! round-trip property on the per-row quantizer itself.

use proptest::prelude::*;
use resemble_nn::quant::{fit_scale_i8, quantize_row_i8};
use resemble_nn::simd::{self, KernelBackend};
use resemble_nn::{Activation, Matrix, Mlp, QuantizedMlp};
use std::sync::Once;

/// Log once which backends this host cannot run, so CI output shows the
/// sweep's actual coverage instead of silently passing a narrower test.
/// Iterates `KernelBackend::ALL` so a newly added tier is reported
/// without touching this test.
fn log_coverage() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let avail = simd::available();
        for be in KernelBackend::ALL {
            if !avail.contains(&be) {
                eprintln!("int8_sweep: SKIPPING {be} (not available on this host)");
            }
        }
        eprintln!(
            "int8_sweep: comparing backends {avail:?}; caps: {}",
            simd::capabilities().summary()
        );
    });
}

/// Quantize the net and run one forward batch under `backend`, returning
/// the output bit patterns.
fn run_quantized(backend: KernelBackend, net: &Mlp, xs: &Matrix) -> Vec<u32> {
    let _guard = simd::force(backend);
    let mut qnet = QuantizedMlp::from_mlp(net);
    let mut out = Matrix::zeros(0, 0);
    qnet.forward_into(xs, &mut out);
    out.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every available backend matches the scalar int8 reference bitwise
    /// on the quantized forward pass, including on a rerun with the same
    /// (reused-scratch) instance.
    #[test]
    fn quantized_forward_matches_scalar_bitwise(
        input_dim in 1usize..20,
        hidden in 1usize..48,
        output_dim in 1usize..12,
        batch in 1usize..24,
        act_sel in 0u8..4,
        seed in any::<u64>(),
        data in proptest::collection::vec(-2.5f32..2.5, 20 * 24),
    ) {
        log_coverage();
        let act = match act_sel {
            0 => Activation::Relu,
            1 => Activation::Tanh,
            2 => Activation::Sigmoid,
            _ => Activation::Identity,
        };
        let sizes = [input_dim, hidden, output_dim];
        let net = Mlp::new(&sizes, act, seed);
        let xs = Matrix::from_fn(batch, input_dim, |r, c| data[r * input_dim + c]);
        let reference = run_quantized(KernelBackend::Scalar, &net, &xs);
        for &be in simd::available() {
            let got = run_quantized(be, &net, &xs);
            prop_assert_eq!(
                &got,
                &reference,
                "{} int8 forward bits differ from scalar ({:?}, act {:?}, batch {})",
                be, sizes, act, batch
            );
            // Rerun on one instance: scratch reuse must not leak state.
            let _guard = simd::force(be);
            let mut qnet = QuantizedMlp::from_mlp(&net);
            let mut out = Matrix::zeros(0, 0);
            qnet.forward_into(&xs, &mut out);
            qnet.forward_into(&xs, &mut out);
            let rerun: Vec<u32> = out.as_slice().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(
                &rerun,
                &reference,
                "{} int8 rerun bits differ ({:?}, act {:?}, batch {})",
                be, sizes, act, batch
            );
        }
    }

    /// Per-row int8 round trip: codes stay in the symmetric range
    /// [-127, 127], dequantization lands within half a scale step of the
    /// input, and quantizing the dequantized row reproduces the codes
    /// exactly (idempotence of the fully-specified rule).
    #[test]
    fn row_quantizer_round_trips(
        data in proptest::collection::vec(-8.0f32..8.0, 1..200),
    ) {
        let mut q = vec![0i8; data.len()];
        let scale = quantize_row_i8(&data, &mut q);
        let max_abs = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        prop_assert_eq!(scale, fit_scale_i8(max_abs));
        let mut back = vec![0.0f32; data.len()];
        for ((b, &qi), &v) in back.iter_mut().zip(&q).zip(&data) {
            prop_assert!((-127..=127).contains(&i32::from(qi)));
            *b = f32::from(qi) * scale;
            prop_assert!(
                (v - *b).abs() <= scale * 0.5 + 1e-6,
                "v={} back={} scale={}", v, *b, scale
            );
        }
        // Idempotence: the dequantized row has the same max_abs bound and
        // re-quantizes to identical codes.
        let mut q2 = vec![0i8; data.len()];
        let scale2 = quantize_row_i8(&back, &mut q2);
        prop_assert_eq!(&q, &q2, "requantization changed codes (scale {} -> {})", scale, scale2);
    }
}
