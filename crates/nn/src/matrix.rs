//! Row-major `f32` matrix with the small set of BLAS-like kernels the MLP
//! needs. Kept dependency-free: the controller network is tiny (4→100→5),
//! so straightforward loops with preallocated outputs are fast enough and
//! faithful to a fixed-function hardware datapath.

use serde::{Deserialize, Serialize};

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Build from a flat row-major slice.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat data view.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable data view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `y = W x` (rows × cols times cols) into a preallocated `y`.
    pub fn matvec_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec: x length");
        assert_eq!(y.len(), self.rows, "matvec: y length");
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (w, xv) in row.iter().zip(x) {
                acc += w * xv;
            }
            *yr = acc;
        }
    }

    /// `y = Wᵀ x` (length-rows `x` to length-cols `y`), used by backprop.
    pub fn matvec_transpose_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "matvec_t: x length");
        assert_eq!(y.len(), self.cols, "matvec_t: y length");
        y.fill(0.0);
        for (r, &xv) in x.iter().enumerate() {
            // lint:allow(float-eq): exact-zero sparsity skip; activations are assigned 0.0 exactly, and a false negative only costs speed
            if xv == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (yc, w) in y.iter_mut().zip(row) {
                *yc += w * xv;
            }
        }
    }

    /// Rank-1 update `self += alpha * a bᵀ`, used to accumulate weight grads.
    pub fn add_outer(&mut self, alpha: f32, a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), self.rows);
        assert_eq!(b.len(), self.cols);
        for (r, &av) in a.iter().enumerate() {
            // lint:allow(float-eq): exact-zero sparsity skip; ReLU outputs are assigned 0.0 exactly, and a false negative only costs speed
            if av == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let s = alpha * av;
            for (w, &bv) in row.iter_mut().zip(b) {
                *w += s * bv;
            }
        }
    }

    /// Elementwise `self += alpha * other`.
    pub fn add_scaled(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Set all elements to zero.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_small() {
        let w = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = [0.0; 2];
        w.matvec_into(&[1.0, 0.0, -1.0], &mut y);
        assert_eq!(y, [-2.0, -2.0]);
    }

    #[test]
    fn matvec_transpose_small() {
        let w = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = [0.0; 3];
        w.matvec_transpose_into(&[1.0, 1.0], &mut y);
        assert_eq!(y, [5.0, 7.0, 9.0]);
    }

    #[test]
    fn transpose_consistent_with_forward() {
        // <Wx, y> == <x, Wᵀy> for random-ish values.
        let w = Matrix::from_fn(4, 5, |r, c| (r * 5 + c) as f32 * 0.3 - 2.0);
        let x: Vec<f32> = (0..5).map(|i| i as f32 - 2.0).collect();
        let y: Vec<f32> = (0..4).map(|i| 0.5 * i as f32 + 1.0).collect();
        let mut wx = vec![0.0; 4];
        w.matvec_into(&x, &mut wx);
        let mut wty = vec![0.0; 5];
        w.matvec_transpose_into(&y, &mut wty);
        let lhs: f32 = wx.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(&wty).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn add_outer_accumulates() {
        let mut g = Matrix::zeros(2, 2);
        g.add_outer(2.0, &[1.0, 3.0], &[4.0, 5.0]);
        assert_eq!(g.as_slice(), &[8.0, 10.0, 24.0, 30.0]);
        g.add_outer(1.0, &[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(g.as_slice(), &[9.0, 11.0, 24.0, 30.0]);
    }

    #[test]
    fn add_scaled_and_clear() {
        let mut a = Matrix::zeros(1, 3);
        let b = Matrix::from_rows(1, 3, vec![1.0, 2.0, 3.0]);
        a.add_scaled(0.5, &b);
        assert_eq!(a.as_slice(), &[0.5, 1.0, 1.5]);
        a.clear();
        assert_eq!(a.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_rows_checks_shape() {
        let _ = Matrix::from_rows(2, 2, vec![1.0; 3]);
    }
}
