//! Row-major `f32` matrix with the small set of BLAS-like kernels the MLP
//! needs. Kept dependency-free: the controller network is tiny (4→100→5),
//! so straightforward loops with preallocated outputs are fast enough and
//! faithful to a fixed-function hardware datapath.

use crate::align::AlignedVec;
use crate::simd;
use serde::{Deserialize, Serialize};

/// Dense row-major matrix.
///
/// Storage is an [`AlignedVec`], so the flat buffer (and with it every
/// `BatchScratch` matrix) starts on a 64-byte boundary. The batched
/// kernels (`matmul_into`, `matmul_transposed_into`, `add_outer_batch`)
/// dispatch through [`crate::simd`] to the backend selected at startup;
/// the per-sample methods (`matvec_into`, `matvec_transpose_into`,
/// `add_outer`) deliberately stay scalar — they are the reference
/// semantics the batched paths are measured and bit-checked against.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: AlignedVec,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: AlignedVec::zeroed(rows * cols),
        }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Build from a flat row-major slice.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self {
            rows,
            cols,
            data: AlignedVec::from_slice(&data),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat data view.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable data view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `y = W x` (rows × cols times cols) into a preallocated `y`.
    pub fn matvec_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec: x length");
        assert_eq!(y.len(), self.rows, "matvec: y length");
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (w, xv) in row.iter().zip(x) {
                acc += w * xv;
            }
            *yr = acc;
        }
    }

    /// `y = Wᵀ x` (length-rows `x` to length-cols `y`), used by backprop.
    pub fn matvec_transpose_into(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "matvec_t: x length");
        assert_eq!(y.len(), self.cols, "matvec_t: y length");
        y.fill(0.0);
        for (r, &xv) in x.iter().enumerate() {
            // lint:allow(float-eq): exact-zero sparsity skip; activations are assigned 0.0 exactly, and a false negative only costs speed
            if xv == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (yc, w) in y.iter_mut().zip(row) {
                *yc += w * xv;
            }
        }
    }

    /// Rank-1 update `self += alpha * a bᵀ`, used to accumulate weight grads.
    pub fn add_outer(&mut self, alpha: f32, a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), self.rows);
        assert_eq!(b.len(), self.cols);
        for (r, &av) in a.iter().enumerate() {
            // lint:allow(float-eq): exact-zero sparsity skip; ReLU outputs are assigned 0.0 exactly, and a false negative only costs speed
            if av == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let s = alpha * av;
            for (w, &bv) in row.iter_mut().zip(b) {
                *w += s * bv;
            }
        }
    }

    /// Reshape in place, reusing the existing allocation. New elements are
    /// zero; surviving elements are *not* preserved meaningfully (callers
    /// overwrite the whole matrix after a resize). Steady-state callers
    /// that resize to the same shape pay nothing.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Minibatch forward GEMM: `ys = xs · selfᵀ`, i.e. row `b` of `ys` is
    /// `self · xs_b` — one call replaces `B` [`Matrix::matvec_into`] calls.
    ///
    /// Every output element keeps one accumulator running the inner
    /// dimension `k` in ascending order, so the result is
    /// **bit-identical** to per-sample `matvec_into` (the determinism
    /// contract the DQN batched datapath relies on): SIMD across
    /// independent elements never reassociates a per-element sum, and
    /// Rust does not contract `a += w * x` into an FMA. Two
    /// shape-dependent strategies, both preserving that order:
    ///
    /// - **Wide output** (`rows ≥ 16`, e.g. the 4→100 layer): stage the
    ///   weights transposed once and sweep each sample output-major —
    ///   `y += x[k] · wtᵏ` — long contiguous axpy rows, no strided
    ///   scatter.
    /// - **Narrow output** (e.g. the 100→5 layer): stage the inputs
    ///   transposed in batch tiles and sweep batch-lane-major —
    ///   `acc[b] += w[k] · xt[k][b]` — the batch itself is the vector.
    ///   Tiles keep the stage and the output scatter L1-resident.
    pub fn matmul_into(&self, xs: &Matrix, ys: &mut Matrix) {
        assert_eq!(xs.cols, self.cols, "matmul: inner dimension");
        assert_eq!(ys.rows, xs.rows, "matmul: batch rows");
        assert_eq!(ys.cols, self.rows, "matmul: output cols");
        let (c, r_dim, batch) = (self.cols, self.rows, xs.rows);
        if batch == 0 || r_dim == 0 {
            return;
        }
        if c == 0 {
            ys.data.fill(0.0);
            return;
        }
        const TILE: usize = 64;
        const WIDE_OUT: usize = 16;
        let be = simd::active();
        thread_local! {
            static STAGE: std::cell::RefCell<(AlignedVec, AlignedVec)> =
                const { std::cell::RefCell::new((AlignedVec::new(), AlignedVec::new())) };
        }
        STAGE.with(|stage| {
            let (buf, acc) = &mut *stage.borrow_mut();
            // Steady-state callers pay no allocation.
            if r_dim >= WIDE_OUT {
                // wt[k][r] = self[r][k], staged once per call.
                buf.clear();
                buf.resize(c * r_dim, 0.0);
                for (r, row) in self.data.chunks_exact(c).enumerate() {
                    for (k, &v) in row.iter().enumerate() {
                        buf[k * r_dim + r] = v;
                    }
                }
                for (xrow, yrow) in xs.data.chunks_exact(c).zip(ys.data.chunks_exact_mut(r_dim)) {
                    simd::matvec_lanes(be, yrow, buf, xrow);
                }
                return;
            }
            acc.clear();
            acc.resize(TILE.min(batch), 0.0);
            let mut t0 = 0;
            while t0 < batch {
                let tl = TILE.min(batch - t0);
                // xt[k][b] = xs[t0 + b][k] within the tile.
                buf.clear();
                buf.resize(c * tl, 0.0);
                for b in 0..tl {
                    let row = &xs.data[(t0 + b) * c..(t0 + b + 1) * c];
                    for (k, &v) in row.iter().enumerate() {
                        buf[k * tl + b] = v;
                    }
                }
                for r in 0..r_dim {
                    let wrow = &self.data[r * c..(r + 1) * c];
                    let acc = &mut acc[..tl];
                    acc.fill(0.0);
                    simd::gemm_lanes(be, acc, wrow, &buf[..c * tl]);
                    for (b, &a) in acc.iter().enumerate() {
                        ys.data[(t0 + b) * r_dim + r] = a;
                    }
                }
                t0 += tl;
            }
        });
    }

    /// Minibatch transposed GEMM: row `b` of `ys` is `selfᵀ · xs_b` — the
    /// backprop delta propagation for a whole batch in one call.
    ///
    /// Runs the dispatched per-sample-row kernel
    /// ([`crate::simd::matvec_t_sample`]), which keeps the exact-zero
    /// sparsity skip (backprop deltas are mostly zero after ReLU masking
    /// and single-action TD errors) and the per-element accumulation
    /// order identical to [`Matrix::matvec_transpose_into`] — the vector
    /// backends only spread each delta row's axpy across the independent
    /// output columns.
    pub fn matmul_transposed_into(&self, xs: &Matrix, ys: &mut Matrix) {
        assert_eq!(xs.cols, self.rows, "matmul_t: inner dimension");
        assert_eq!(ys.rows, xs.rows, "matmul_t: batch rows");
        assert_eq!(ys.cols, self.cols, "matmul_t: output cols");
        let (r_dim, c) = (self.rows, self.cols);
        let be = simd::active();
        for s in 0..xs.rows {
            let x = &xs.data[s * r_dim..(s + 1) * r_dim];
            let y = &mut ys.data[s * c..(s + 1) * c];
            simd::matvec_t_sample(be, y, &self.data, x);
        }
    }

    /// Batched gradient accumulation `self += alpha · aᵀ b`: the
    /// `deltaᵀ · acts` GEMM of a minibatch backward pass. Each element
    /// receives its contributions in ascending sample order, so the
    /// result is bit-identical to `B` sequential [`Matrix::add_outer`]
    /// calls. Two shape-dependent strategies:
    ///
    /// - **Wide rows** (`cols ≥ 16`, e.g. the 5×100 output-layer
    ///   gradient): per sample, sweep the delta entries row-major with
    ///   the exact-zero skip — identical traversal to `add_outer`.
    /// - **Narrow rows** (e.g. the 100×4 input-layer gradient):
    ///   accumulate into a transposed stage so each sample becomes a few
    ///   long axpy sweeps across the delta dimension instead of ~rows
    ///   tiny branch-mispredicting ones; see `simd::outer_lanes_sample`
    ///   for why the store layout and the moved sparsity skip are exact.
    pub fn add_outer_batch(&mut self, alpha: f32, a: &Matrix, b: &Matrix) {
        assert_eq!(a.rows, b.rows, "add_outer_batch: batch rows");
        assert_eq!(a.cols, self.rows, "add_outer_batch: rows");
        assert_eq!(b.cols, self.cols, "add_outer_batch: cols");
        let (rows, cols, batch) = (self.rows, self.cols, a.rows);
        if batch == 0 || rows == 0 || cols == 0 {
            return;
        }
        const WIDE_ROW: usize = 16;
        let be = simd::active();
        if cols >= WIDE_ROW {
            for (a_row, b_row) in a.data.chunks_exact(rows).zip(b.data.chunks_exact(cols)) {
                simd::outer_rows_sample(be, &mut self.data, a_row, b_row, alpha);
            }
            return;
        }
        thread_local! {
            static STAGE: std::cell::RefCell<AlignedVec> =
                const { std::cell::RefCell::new(AlignedVec::new()) };
        }
        STAGE.with(|stage| {
            let dwt = &mut *stage.borrow_mut();
            dwt.clear();
            dwt.resize(rows * cols, 0.0);
            // dwt[c][r] = self[r][c]
            for (r, row) in self.data.chunks_exact(cols).enumerate() {
                for (c, &v) in row.iter().enumerate() {
                    dwt[c * rows + r] = v;
                }
            }
            for (a_row, b_row) in a.data.chunks_exact(rows).zip(b.data.chunks_exact(cols)) {
                simd::outer_lanes_sample(be, dwt, a_row, b_row, alpha);
            }
            for (r, row) in self.data.chunks_exact_mut(cols).enumerate() {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = dwt[c * rows + r];
                }
            }
        });
    }

    /// Elementwise `self += alpha * other`.
    pub fn add_scaled(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Set all elements to zero.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_small() {
        let w = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = [0.0; 2];
        w.matvec_into(&[1.0, 0.0, -1.0], &mut y);
        assert_eq!(y, [-2.0, -2.0]);
    }

    #[test]
    fn matvec_transpose_small() {
        let w = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = [0.0; 3];
        w.matvec_transpose_into(&[1.0, 1.0], &mut y);
        assert_eq!(y, [5.0, 7.0, 9.0]);
    }

    #[test]
    fn transpose_consistent_with_forward() {
        // <Wx, y> == <x, Wᵀy> for random-ish values.
        let w = Matrix::from_fn(4, 5, |r, c| (r * 5 + c) as f32 * 0.3 - 2.0);
        let x: Vec<f32> = (0..5).map(|i| i as f32 - 2.0).collect();
        let y: Vec<f32> = (0..4).map(|i| 0.5 * i as f32 + 1.0).collect();
        let mut wx = vec![0.0; 4];
        w.matvec_into(&x, &mut wx);
        let mut wty = vec![0.0; 5];
        w.matvec_transpose_into(&y, &mut wty);
        let lhs: f32 = wx.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(&wty).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn add_outer_accumulates() {
        let mut g = Matrix::zeros(2, 2);
        g.add_outer(2.0, &[1.0, 3.0], &[4.0, 5.0]);
        assert_eq!(g.as_slice(), &[8.0, 10.0, 24.0, 30.0]);
        g.add_outer(1.0, &[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(g.as_slice(), &[9.0, 11.0, 24.0, 30.0]);
    }

    #[test]
    fn add_scaled_and_clear() {
        let mut a = Matrix::zeros(1, 3);
        let b = Matrix::from_rows(1, 3, vec![1.0, 2.0, 3.0]);
        a.add_scaled(0.5, &b);
        assert_eq!(a.as_slice(), &[0.5, 1.0, 1.5]);
        a.clear();
        assert_eq!(a.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_rows_checks_shape() {
        let _ = Matrix::from_rows(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_matches_per_sample_matvec_bitwise() {
        // 7 batch rows exercises both the 4-wide block and the remainder.
        let w = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) as f32).sin());
        let xs = Matrix::from_fn(7, 3, |r, c| ((r * 7 + c) as f32 * 0.37).cos());
        let mut batched = Matrix::zeros(7, 5);
        w.matmul_into(&xs, &mut batched);
        let mut single = vec![0.0f32; 5];
        for b in 0..7 {
            w.matvec_into(xs.row(b), &mut single);
            for (a, e) in batched.row(b).iter().zip(&single) {
                assert_eq!(a.to_bits(), e.to_bits(), "row {b}");
            }
        }
    }

    #[test]
    fn matmul_transposed_matches_per_sample_bitwise() {
        let w = Matrix::from_fn(4, 6, |r, c| (r as f32 - c as f32) * 0.21);
        // Include exact zeros to exercise the sparsity skip.
        let xs = Matrix::from_fn(5, 4, |r, c| if (r + c) % 3 == 0 { 0.0 } else { 0.3 });
        let mut batched = Matrix::zeros(5, 6);
        w.matmul_transposed_into(&xs, &mut batched);
        let mut single = vec![0.0f32; 6];
        for b in 0..5 {
            w.matvec_transpose_into(xs.row(b), &mut single);
            for (a, e) in batched.row(b).iter().zip(&single) {
                assert_eq!(a.to_bits(), e.to_bits(), "row {b}");
            }
        }
    }

    #[test]
    fn add_outer_batch_matches_sequential_bitwise() {
        let a = Matrix::from_fn(6, 3, |r, c| if c == r % 3 { 0.7 - r as f32 } else { 0.0 });
        let b = Matrix::from_fn(6, 4, |r, c| (r * 4 + c) as f32 * 0.11 - 1.0);
        let mut batched = Matrix::zeros(3, 4);
        batched.add_outer_batch(0.5, &a, &b);
        let mut seq = Matrix::zeros(3, 4);
        for s in 0..6 {
            seq.add_outer(0.5, a.row(s), b.row(s));
        }
        let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&batched), bits(&seq));
    }

    #[test]
    fn matmul_handles_empty_batch() {
        let w = Matrix::from_rows(2, 3, vec![1.0; 6]);
        let xs = Matrix::zeros(0, 3);
        let mut ys = Matrix::zeros(0, 2);
        w.matmul_into(&xs, &mut ys);
        let mut yt = Matrix::zeros(0, 3);
        let xt = Matrix::zeros(0, 2);
        w.matmul_transposed_into(&xt, &mut yt);
        assert!(ys.is_empty() && yt.is_empty());
    }

    #[test]
    fn resize_reuses_and_rezeroes_len() {
        let mut m = Matrix::zeros(2, 2);
        *m.get_mut(1, 1) = 5.0;
        m.resize(3, 2);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.len(), 6);
        m.resize(1, 2);
        assert_eq!(m.len(), 2);
    }
}
