//! Activation functions with their derivatives.

use crate::matrix::Matrix;
use crate::simd;
use serde::{Deserialize, Serialize};

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// f(x) = x — used on the Q-value output layer.
    Identity,
    /// f(x) = max(0, x) — the paper's hidden-layer activation; cheap to
    /// implement as a lookup/compare in hardware (Table VII's `T_av`).
    Relu,
    /// f(x) = tanh(x).
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Apply the activation elementwise in place.
    pub fn apply(self, xs: &mut [f32]) {
        match self {
            Activation::Identity => {}
            Activation::Relu => {
                for x in xs {
                    if *x < 0.0 {
                        *x = 0.0;
                    }
                }
            }
            Activation::Tanh => {
                for x in xs {
                    *x = x.tanh();
                }
            }
            Activation::Sigmoid => {
                for x in xs {
                    *x = 1.0 / (1.0 + (-*x).exp());
                }
            }
        }
    }

    /// Apply the activation to a whole minibatch of layer outputs (one
    /// row per sample) in a single pass over the flat row-major storage.
    ///
    /// Activations are elementwise, so the flat sweep computes exactly
    /// the same unary operation per element as per-row [`Activation::apply`]
    /// calls — bit-identical, but one loop instead of `B`. ReLU (the
    /// paper's hidden-layer activation, i.e. the batched hot path)
    /// dispatches to the [`crate::simd`] clamp kernel, which preserves
    /// `-0.0`/NaN bit patterns exactly like the scalar branch; the libm
    /// activations stay scalar.
    pub fn apply_batch(self, xs: &mut Matrix) {
        match self {
            Activation::Relu => simd::relu(simd::active(), xs.as_mut_slice()),
            _ => self.apply(xs.as_mut_slice()),
        }
    }

    /// Batched in-place chain-rule step: `deltas[i] *= f'(ys[i])`, the
    /// hidden-layer masking of minibatch backprop.
    ///
    /// Per element this performs exactly the multiply the per-sample path
    /// performs (`d *= derivative_from_output(y)`), so results are
    /// bit-identical — including `d * 0.0 = ±0.0` keeping `d`'s sign for
    /// masked ReLU lanes. Identity skips the `* 1.0` sweep, which is
    /// exact for every value f32 arithmetic can produce. The per-variant
    /// kernels live in [`crate::simd`] and dispatch to the selected
    /// backend.
    pub fn mul_derivative_batch(self, deltas: &mut [f32], ys: &[f32]) {
        match self {
            Activation::Identity => {}
            Activation::Relu => simd::relu_mask(simd::active(), deltas, ys),
            Activation::Tanh => simd::tanh_mask(simd::active(), deltas, ys),
            Activation::Sigmoid => simd::sigmoid_mask(simd::active(), deltas, ys),
        }
    }

    /// Derivative evaluated from the *activated* output `y = f(x)`.
    ///
    /// All supported activations admit this form (ReLU's derivative at the
    /// kink is taken as 0), which lets backprop avoid storing
    /// pre-activations.
    #[inline]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut xs = [-1.0, 0.0, 2.5];
        Activation::Relu.apply(&mut xs);
        assert_eq!(xs, [0.0, 0.0, 2.5]);
    }

    #[test]
    fn identity_is_noop() {
        let mut xs = [-1.0, 3.0];
        Activation::Identity.apply(&mut xs);
        assert_eq!(xs, [-1.0, 3.0]);
    }

    #[test]
    fn derivatives_match_finite_difference() {
        let eps = 1e-3f32;
        for act in [
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
        ] {
            for &x in &[-1.5f32, -0.2, 0.3, 1.7] {
                let mut a = [x];
                act.apply(&mut a);
                let mut lo = [x - eps];
                let mut hi = [x + eps];
                act.apply(&mut lo);
                act.apply(&mut hi);
                let fd = (hi[0] - lo[0]) / (2.0 * eps);
                let an = act.derivative_from_output(a[0]);
                assert!(
                    (fd - an).abs() < 1e-2,
                    "{act:?} at {x}: fd={fd} analytic={an}"
                );
            }
        }
    }

    #[test]
    fn apply_batch_matches_per_row_bitwise() {
        for act in [
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
        ] {
            // black_box: the claim is that both paths perform the same
            // runtime operation per element; constant inputs would let the
            // compiler fold one path's libm calls at build time, which can
            // differ from the runtime call by 1 ulp.
            let mut batch = Matrix::from_fn(3, 4, |r, c| {
                std::hint::black_box((r as f32 - 1.0) * (c as f32 + 0.3))
            });
            let rows: Vec<Vec<f32>> = (0..3).map(|r| batch.row(r).to_vec()).collect();
            act.apply_batch(&mut batch);
            for (r, mut row) in rows.into_iter().enumerate() {
                act.apply(&mut row);
                for (a, e) in batch.row(r).iter().zip(&row) {
                    assert_eq!(a.to_bits(), e.to_bits(), "{act:?} row {r}");
                }
            }
        }
    }

    #[test]
    fn mul_derivative_batch_matches_scalar_bitwise() {
        for act in [
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
        ] {
            let ys: Vec<f32> = vec![-2.0, -0.5, -0.0, 0.0, 0.3, 1.7, 42.0];
            let mut batched: Vec<f32> = vec![-3.0, -1.0, -0.0, 0.0, 0.5, 2.0, -7.5];
            let mut scalar = batched.clone();
            act.mul_derivative_batch(&mut batched, &ys);
            for (d, &y) in scalar.iter_mut().zip(&ys) {
                *d *= act.derivative_from_output(y);
            }
            for (i, (b, s)) in batched.iter().zip(&scalar).enumerate() {
                assert_eq!(b.to_bits(), s.to_bits(), "{act:?} elem {i}");
            }
        }
    }

    #[test]
    fn sigmoid_range() {
        let mut xs = [-100.0, 0.0, 100.0];
        Activation::Sigmoid.apply(&mut xs);
        assert!(xs[0] < 1e-6);
        assert!((xs[1] - 0.5).abs() < 1e-6);
        assert!(xs[2] > 1.0 - 1e-6);
    }
}
