//! Activation functions with their derivatives.

use serde::{Deserialize, Serialize};

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// f(x) = x — used on the Q-value output layer.
    Identity,
    /// f(x) = max(0, x) — the paper's hidden-layer activation; cheap to
    /// implement as a lookup/compare in hardware (Table VII's `T_av`).
    Relu,
    /// f(x) = tanh(x).
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Apply the activation elementwise in place.
    pub fn apply(self, xs: &mut [f32]) {
        match self {
            Activation::Identity => {}
            Activation::Relu => {
                for x in xs {
                    if *x < 0.0 {
                        *x = 0.0;
                    }
                }
            }
            Activation::Tanh => {
                for x in xs {
                    *x = x.tanh();
                }
            }
            Activation::Sigmoid => {
                for x in xs {
                    *x = 1.0 / (1.0 + (-*x).exp());
                }
            }
        }
    }

    /// Derivative evaluated from the *activated* output `y = f(x)`.
    ///
    /// All supported activations admit this form (ReLU's derivative at the
    /// kink is taken as 0), which lets backprop avoid storing
    /// pre-activations.
    #[inline]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut xs = [-1.0, 0.0, 2.5];
        Activation::Relu.apply(&mut xs);
        assert_eq!(xs, [0.0, 0.0, 2.5]);
    }

    #[test]
    fn identity_is_noop() {
        let mut xs = [-1.0, 3.0];
        Activation::Identity.apply(&mut xs);
        assert_eq!(xs, [-1.0, 3.0]);
    }

    #[test]
    fn derivatives_match_finite_difference() {
        let eps = 1e-3f32;
        for act in [
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
        ] {
            for &x in &[-1.5f32, -0.2, 0.3, 1.7] {
                let mut a = [x];
                act.apply(&mut a);
                let mut lo = [x - eps];
                let mut hi = [x + eps];
                act.apply(&mut lo);
                act.apply(&mut hi);
                let fd = (hi[0] - lo[0]) / (2.0 * eps);
                let an = act.derivative_from_output(a[0]);
                assert!(
                    (fd - an).abs() < 1e-2,
                    "{act:?} at {x}: fd={fd} analytic={an}"
                );
            }
        }
    }

    #[test]
    fn sigmoid_range() {
        let mut xs = [-100.0, 0.0, 100.0];
        Activation::Sigmoid.apply(&mut xs);
        assert!(xs[0] < 1e-6);
        assert!((xs[1] - 0.5).abs() < 1e-6);
        assert!(xs[2] > 1.0 - 1e-6);
    }
}
