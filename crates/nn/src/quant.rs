//! Quantization: the offline fixed-point study *and* the deterministic
//! int8 serving datapath.
//!
//! Table VIII assumes the deployed controller stores weights as 16-bit
//! fixed point; the paper leaves "optimization of ReSemble hardware
//! implementation" as future work. The [`QuantSpec`] half of this module
//! provides the tooling for that study: quantize a trained network to
//! n-bit fixed point (symmetric, per-tensor scale) and measure the
//! accuracy the datapath would actually see (`ext_quantization` in the
//! harness runs the end-to-end sweep).
//!
//! The [`QuantizedMlp`] half promotes the same rules to a real int8
//! *inference* datapath for frozen serving models. Every step is fully
//! specified so results are bit-identical across kernel backends and
//! across reruns:
//!
//! - **Per-row symmetric scales.** Each weight row (one output neuron)
//!   and each activation row (one sample) gets `scale = max_abs / 127`
//!   (`1.0` for an all-zero row); values quantize to `[-127, 127]`,
//!   never `-128`, so negation stays in range.
//! - **Round half away from zero, via one reciprocal multiply.** The
//!   serving quantizer computes `inv = 1.0 / scale` once per row and
//!   every element as `clamp(round_half_away(v · inv), -127, 127)` —
//!   one pinned IEEE multiply per element instead of a division, which
//!   is what lets the quantize step vectorize
//!   (`crate::simd::quantize_i8`). If `inv` overflows to infinity (a
//!   subnormal scale), the row falls back to all-zero codes with scale
//!   `1.0` — the same rule an all-zero row gets. [`round_half_away`] —
//!   exactly `f32::round` — stays the single tie-breaking rule, shared
//!   with the offline [`QuantSpec::quantize`] (which keeps its historic
//!   division form; the two paths share the *rounding* rule, not the
//!   scaling expression).
//! - **Exact i32 accumulation.** Both int8 GEMM forms
//!   (`crate::simd::gemm_i8_i32` for deep layers,
//!   `crate::simd::gemm_i8p_lanes` for small-fan-in/wide layers)
//!   accumulate in i32, where every partial sum is exact, so *any*
//!   summation order gives identical bytes — the backends need not
//!   mirror the scalar loop order the way the float kernels must.
//! - **Shared non-dispatched dequant.** [`dequantize_acc`] fixes the
//!   expression order `acc·(sx·sw) + bias`; it and the activation run in
//!   plain scalar Rust regardless of backend.
//! - **Finite inputs.** The elementwise kernels promise cross-backend
//!   byte-identity for finite activations only (scalar saturating casts
//!   and vector `cvttps2dq` disagree on NaN/±inf); frozen serving
//!   models produce finite activations by construction.
//!
//! `crates/nn/tests/int8_sweep.rs` pins the cross-backend byte-equality;
//! DESIGN.md documents the scheme.

use crate::activation::Activation;
use crate::matrix::Matrix;
use crate::mlp::Mlp;
use crate::simd;

/// The single rounding rule every quantizer in this module uses:
/// round-to-nearest with ties away from zero — exactly [`f32::round`],
/// wrapped under its numeric name so call sites document the choice and
/// all paths (offline [`QuantSpec`], int8 serving) share one rule.
#[inline]
pub fn round_half_away(v: f32) -> f32 {
    v.round()
}

/// The symmetric int8 range bound: quantized values live in
/// `[-127, 127]` (never `-128`), so `q` and `-q` are both representable
/// and scales divide by exactly 127.
pub const QMAX_I8: f32 = 127.0;

/// Per-row symmetric scale covering `max_abs` with the `[-127, 127]`
/// range; an all-zero row (`max_abs == 0`, including non-finite-free
/// degenerate inputs) gets scale `1.0` so dequantization stays finite.
#[inline]
pub fn fit_scale_i8(max_abs: f32) -> f32 {
    if max_abs > 0.0 {
        max_abs / QMAX_I8
    } else {
        1.0
    }
}

/// Quantize `src` into `dst` with one shared symmetric scale:
/// `q = clamp(round_half_away(v · inv), -127, 127)` with
/// `inv = 1.0 / scale` computed once per row. Returns the scale.
///
/// Every operation is pinned — the single reciprocal, the per-element
/// multiply, the truncate-plus-fraction-compare rounding inside
/// [`crate::simd::quantize_i8`], clamp before the cast — so the bytes
/// are identical on every backend and every rerun (for finite inputs;
/// see the module docs). A subnormal scale whose reciprocal overflows
/// yields all-zero codes with scale `1.0`.
pub fn quantize_row_i8(src: &[f32], dst: &mut [i8]) -> f32 {
    quantize_row_i8_be(simd::active(), src, dst)
}

/// [`quantize_row_i8`] with an explicit backend — the form the
/// [`QuantizedMlp`] forward pass uses so one `simd::active()` read per
/// call covers every row.
pub(crate) fn quantize_row_i8_be(be: simd::KernelBackend, src: &[f32], dst: &mut [i8]) -> f32 {
    assert_eq!(src.len(), dst.len(), "quantize_row_i8: length mismatch");
    let scale = fit_scale_i8(simd::max_abs_f32(be, src));
    let inv = 1.0 / scale;
    if !inv.is_finite() {
        dst.fill(0);
        return 1.0;
    }
    simd::quantize_i8(be, src, dst, inv);
    scale
}

/// Dequantize one int8-GEMM output element with the fixed expression
/// order `acc · (sx · sw) + bias`: the two scales multiply first, then
/// scale the exact i32 accumulator, then the f32 bias adds — three IEEE
/// roundings in a pinned sequence, identical everywhere.
#[inline]
pub fn dequantize_acc(acc: i32, sx: f32, sw: f32, bias: f32) -> f32 {
    acc as f32 * (sx * sw) + bias
}

/// `dst[r][c] = dequantize_acc(acc[r][c], x_scales[r], w_scales[c],
/// bias[c])` over a `batch × fan_out` block — the shared non-dispatched
/// epilogue of every quantized layer. `acc_stride` is the accumulator's
/// row stride: `fan_out` for the dot-form GEMM, the lane-padded width
/// for the pair-interleaved form (padding columns are skipped).
fn dequantize_rows(
    dst: &mut [f32],
    acc: &[i32],
    acc_stride: usize,
    x_scales: &[f32],
    w_scales: &[f32],
    bias: &[f32],
) {
    let fan_out = w_scales.len();
    for ((drow, arow), &sx) in dst
        .chunks_exact_mut(fan_out)
        .zip(acc.chunks_exact(acc_stride))
        .zip(x_scales)
    {
        for ((d, &a), (&sw, &b)) in drow.iter_mut().zip(arow).zip(w_scales.iter().zip(bias)) {
            *d = dequantize_acc(a, sx, sw, b);
        }
    }
}

/// Layers with `fan_in <= LANES_MAX_FAN_IN` and
/// `fan_out >= LANES_MIN_FAN_OUT` get a second, pair-interleaved weight
/// copy for [`simd::gemm_i8p_lanes`]: with a tiny fan-in the dot-product
/// GEMM runs entirely in its scalar tail, while the lanes form
/// vectorizes across the wide fan-out the way the f32 `matvec_lanes`
/// kernel does. Both forms are exact in i32, so which one runs never
/// changes a byte — only how fast it is produced.
const LANES_MAX_FAN_IN: usize = 64;
/// See [`LANES_MAX_FAN_IN`].
const LANES_MIN_FAN_OUT: usize = 16;

/// The widest int8 pair-lanes vector body across backends — AVX-512's
/// 16 outputs per iteration (AVX2: 8, SSE2/NEON: 4). The interleaved
/// layout pads `fan_out` up to a multiple of this with zero weights so
/// *every* tier's vector body covers the whole output row and no
/// backend falls into the scalar lanes tail. Zero weights contribute
/// exact zeros to the i32 accumulator, so the padding never changes a
/// real output byte on any backend; the padded accumulator columns are
/// skipped by the dequantize epilogue.
const LANES_PAD_TO: usize = 16;

/// Batch-tile height for [`QuantizedMlp::forward_into`]: at 32 rows a
/// 1024-wide hidden layer's tile scratch (f32 stage, i32 accumulator,
/// i8 codes) totals ~300 KiB — inside L2 on every x86-64 serving target
/// — where a monolithic pass over a few hundred pooled rows streams
/// multi-megabyte intermediates through last-level cache five times per
/// forward. Purely a blocking factor: rows are independent, so the tile
/// walk is byte-identical to a single pass at any value.
const TILE_ROWS: usize = 32;

/// One dense layer with int8 weights: `fan_out × fan_in` row-major
/// (each row is one output neuron, quantized with its own scale).
/// `wt_lanes` is the optional pair-interleaved copy (layout
/// `wt[(p·lanes_out + r)·2 + {0,1}] = qw[r][2p + {0,1}]`, odd fan-in
/// tail zero-padded) for the small-fan-in fast path; `lanes_out` is
/// `fan_out` rounded up to [`LANES_PAD_TO`] (the interleaved row
/// stride; the padding rows hold zero weights).
#[derive(Debug, Clone)]
struct QuantLayer {
    qw: Vec<i8>,
    wt_lanes: Option<Vec<i16>>,
    lanes_out: usize,
    w_scales: Vec<f32>,
    bias: Vec<f32>,
    act: Activation,
    fan_in: usize,
    fan_out: usize,
}

/// Build the pair-interleaved i16 weight copy from row-major int8
/// weights (see [`QuantLayer::wt_lanes`]); `lanes_out` is the padded
/// output stride, `>= fan_out` (the row count `qw.len() / fan_in`).
fn interleave_weight_pairs(qw: &[i8], fan_in: usize, lanes_out: usize) -> Vec<i16> {
    let pairs = fan_in.div_ceil(2);
    let mut wt = vec![0i16; pairs * lanes_out * 2];
    for (r, row) in qw.chunks_exact(fan_in).enumerate() {
        for p in 0..pairs {
            wt[(p * lanes_out + r) * 2] = i16::from(row[2 * p]);
            if let Some(&w1) = row.get(2 * p + 1) {
                wt[(p * lanes_out + r) * 2 + 1] = i16::from(w1);
            }
        }
    }
    wt
}

/// Forward-only int8 copy of a trained [`Mlp`] for frozen serving:
/// per-row symmetric int8 weights, dynamic per-sample activation
/// quantization, exact i32 GEMM accumulation, f32 bias/activation — see
/// the module docs for the full determinism argument.
///
/// Owns its scratch buffers, so a steady-state `forward_into` allocates
/// nothing; callers that share one instance across sessions (the serve
/// `WeightPool`) get the same no-allocation property the f32
/// `BatchScratch` path has.
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    layers: Vec<QuantLayer>,
    sizes: Vec<usize>,
    qx: Vec<i8>,
    xpairs: Vec<i32>,
    x_scales: Vec<f32>,
    acc: Vec<i32>,
    stage: Vec<f32>,
    stage_out: Vec<f32>,
}

impl QuantizedMlp {
    /// Quantize a trained network's weights (per-row symmetric int8);
    /// biases stay f32. The source network is unchanged.
    pub fn from_mlp(net: &Mlp) -> Self {
        let sizes = net.sizes().to_vec();
        assert!(sizes.len() >= 2, "QuantizedMlp needs at least one layer");
        assert!(
            sizes.iter().all(|&s| s > 0),
            "QuantizedMlp layer sizes must be nonzero"
        );
        let params = net.flat_params();
        let hidden_act = net.hidden_activation();
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        let mut off = 0usize;
        for l in 0..sizes.len() - 1 {
            let (fan_in, fan_out) = (sizes[l], sizes[l + 1]);
            let w = &params[off..off + fan_in * fan_out];
            off += fan_in * fan_out;
            let bias = params[off..off + fan_out].to_vec();
            off += fan_out;
            let mut qw = vec![0i8; fan_in * fan_out];
            let mut w_scales = vec![0.0f32; fan_out];
            for ((qrow, srow), sc) in qw
                .chunks_exact_mut(fan_in)
                .zip(w.chunks_exact(fan_in))
                .zip(w_scales.iter_mut())
            {
                *sc = quantize_row_i8(srow, qrow);
            }
            // Mirror `Mlp::new`: hidden layers share the hidden
            // activation, the output layer is identity.
            let act = if l == sizes.len() - 2 {
                Activation::Identity
            } else {
                hidden_act
            };
            let lanes_out = fan_out.div_ceil(LANES_PAD_TO) * LANES_PAD_TO;
            let wt_lanes = (fan_in <= LANES_MAX_FAN_IN && fan_out >= LANES_MIN_FAN_OUT)
                .then(|| interleave_weight_pairs(&qw, fan_in, lanes_out));
            layers.push(QuantLayer {
                qw,
                wt_lanes,
                lanes_out,
                w_scales,
                bias,
                act,
                fan_in,
                fan_out,
            });
        }
        assert_eq!(off, params.len(), "flat parameter layout mismatch");
        Self {
            layers,
            sizes,
            qx: Vec::new(),
            xpairs: Vec::new(),
            x_scales: Vec::new(),
            acc: Vec::new(),
            stage: Vec::new(),
            stage_out: Vec::new(),
        }
    }

    /// Layer sizes, input to output (same as [`Mlp::sizes`]).
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.sizes[0]
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.sizes[self.sizes.len() - 1]
    }

    /// Batched forward pass: `out` is resized to
    /// `xs.rows() × output_dim` and overwritten. Each layer quantizes its
    /// input rows on the fly (dynamic activation quantization), runs the
    /// dispatched exact-i32 GEMM — the pair-interleaved lanes form when
    /// the layer carries `wt_lanes`, the dot form otherwise; both produce
    /// identical bytes — then dequantizes, adds bias, and applies the
    /// activation in shared scalar code — byte-identical output on every
    /// backend.
    pub fn forward_into(&mut self, xs: &Matrix, out: &mut Matrix) {
        assert_eq!(xs.cols(), self.input_dim(), "forward_into: input dim");
        let batch = xs.rows();
        let (in_dim, out_dim) = (self.input_dim(), self.output_dim());
        out.resize(batch, out_dim);
        if batch == 0 {
            return;
        }
        let be = simd::active();
        // Scratch buffers only ever grow (to the largest layer's needs)
        // and are addressed through per-layer slices below: shrinking
        // between layers would re-zero megabytes per call on wide models.
        // `lanes_out >= fan_out`, so sizing by it also covers the
        // pair-lanes form's padded accumulator rows.
        let max_fan = self.layers.iter().map(|l| l.fan_in.max(l.lanes_out));
        let max_fan = max_fan.max().unwrap_or(0);
        grow(&mut self.qx, TILE_ROWS * max_fan, 0);
        grow(&mut self.acc, TILE_ROWS * max_fan, 0);
        grow(&mut self.stage, TILE_ROWS * max_fan, 0.0);
        grow(&mut self.stage_out, TILE_ROWS * max_fan, 0.0);
        self.x_scales.resize(TILE_ROWS, 0.0);
        // Rows are independent, so walking the batch in cache-sized
        // tiles computes the exact same per-row operation sequence as
        // one monolithic pass — identical bytes, but the intermediate
        // activations of a wide hidden layer stay resident instead of
        // streaming through last-level cache once per stage.
        for (xt, ot) in xs
            .as_slice()
            .chunks(TILE_ROWS * in_dim)
            .zip(out.as_mut_slice().chunks_mut(TILE_ROWS * out_dim))
        {
            self.forward_tile(be, xt.len() / in_dim, xt, ot);
        }
    }

    /// One batch tile of [`Self::forward_into`]: `rows` samples from
    /// `xs_tile` (row-major) through every layer into `out_tile`.
    fn forward_tile(
        &mut self,
        be: simd::KernelBackend,
        rows: usize,
        xs_tile: &[f32],
        out_tile: &mut [f32],
    ) {
        let n_layers = self.layers.len();
        self.stage[..rows * self.sizes[0]].copy_from_slice(xs_tile);
        for (l, layer) in self.layers.iter().enumerate() {
            let (fan_in, fan_out) = (layer.fan_in, layer.fan_out);
            let qx = &mut self.qx[..rows * fan_in];
            for ((srow, qrow), sc) in self.stage[..rows * fan_in]
                .chunks_exact(fan_in)
                .zip(qx.chunks_exact_mut(fan_in))
                .zip(self.x_scales.iter_mut())
            {
                *sc = quantize_row_i8_be(be, srow, qrow);
            }
            // The pair-lanes form runs at the padded stride so every
            // backend's vector body covers the whole row (see
            // [`LANES_PAD_TO`]); the dot form is unpadded.
            let acc_stride = if layer.wt_lanes.is_some() {
                layer.lanes_out
            } else {
                fan_out
            };
            let acc = &mut self.acc[..rows * acc_stride];
            if let Some(wt) = layer.wt_lanes.as_deref() {
                for (qrow, arow) in qx
                    .chunks_exact(fan_in)
                    .zip(acc.chunks_exact_mut(layer.lanes_out))
                {
                    simd::pack_i8_pairs(qrow, &mut self.xpairs);
                    simd::gemm_i8p_lanes(be, arow, &self.xpairs, wt, layer.lanes_out);
                }
            } else {
                simd::gemm_i8_i32(be, acc, qx, &layer.qw, fan_in);
            }
            let dst = if l + 1 == n_layers {
                &mut *out_tile
            } else {
                &mut self.stage_out[..rows * fan_out]
            };
            dequantize_rows(
                dst,
                acc,
                acc_stride,
                &self.x_scales,
                &layer.w_scales,
                &layer.bias,
            );
            // ReLU goes through the branchless dispatched kernel — the
            // scalar `apply` loop's data-dependent branch mispredicts on
            // every other element of a random-signed hidden row. The two
            // are bit-identical (the f32 batch-vs-per-sample bitwise test
            // pins that equivalence).
            match layer.act {
                Activation::Relu => simd::relu(be, dst),
                act => act.apply(dst),
            }
            if l + 1 != n_layers {
                std::mem::swap(&mut self.stage, &mut self.stage_out);
            }
        }
    }

    /// Argmax decision per row of a forward pass over `xs` (ties to the
    /// lower index, like [`Mlp::argmax`]) — the comparison hook the
    /// agreement measurements use.
    pub fn decide_batch(&mut self, xs: &Matrix, out: &mut Matrix) -> Vec<usize> {
        self.forward_into(xs, out);
        (0..out.rows()).map(|r| argmax_row(out.row(r))).collect()
    }
}

/// Grow-only `Vec::resize`: never shrinks, so alternating layer shapes
/// cannot force a refill of previously sized capacity on every call.
fn grow<T: Clone>(v: &mut Vec<T>, len: usize, fill: T) {
    if v.len() < len {
        v.resize(len, fill);
    }
}

/// Index of the maximum element, ties to the lower index (matching
/// [`Mlp::argmax`]'s `>` comparison).
pub fn argmax_row(row: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Quantization description: symmetric fixed point with `bits` total bits
/// (1 sign bit) and a per-network scale chosen from the parameter range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantSpec {
    /// Total bits per parameter (including sign). 2..=32.
    pub bits: u32,
    /// Scale: real value = q * scale, q ∈ [-(2^(bits-1)-1), 2^(bits-1)-1].
    pub scale: f32,
}

impl QuantSpec {
    /// Choose the scale that covers `max_abs` with the given bit width.
    pub fn fit(bits: u32, max_abs: f32) -> Self {
        assert!((2..=32).contains(&bits), "bits must be in 2..=32");
        let qmax = ((1u64 << (bits - 1)) - 1) as f32;
        let scale = if max_abs > 0.0 { max_abs / qmax } else { 1.0 };
        Self { bits, scale }
    }

    /// Quantize one value: the same symmetric-scale rule the int8 serving
    /// path uses ([`round_half_away`], clamp to the signed range), then
    /// dequantized back to f32.
    #[inline]
    pub fn quantize(&self, v: f32) -> f32 {
        let qmax = ((1u64 << (self.bits - 1)) - 1) as f32;
        let q = round_half_away(v / self.scale).clamp(-qmax, qmax);
        q * self.scale
    }
}

/// Quantize every parameter of `net` to `bits`-bit fixed point in place;
/// returns the spec used and the RMS quantization error.
pub fn quantize_mlp(net: &mut Mlp, bits: u32) -> (QuantSpec, f32) {
    let params = net.flat_params();
    let max_abs = params.iter().fold(0.0f32, |m, p| m.max(p.abs()));
    let spec = QuantSpec::fit(bits, max_abs);
    let mut err_sq = 0.0f64;
    let quantized: Vec<f32> = params
        .iter()
        .map(|&p| {
            let q = spec.quantize(p);
            err_sq += ((q - p) as f64).powi(2);
            q
        })
        .collect();
    net.load_flat(&quantized);
    let rms = (err_sq / params.len().max(1) as f64).sqrt() as f32;
    (spec, rms)
}

/// Fraction of argmax decisions that change between `reference` and
/// `quantized` over the given probe states — the metric that matters for
/// an action-selection network.
pub fn argmax_agreement(reference: &Mlp, quantized: &Mlp, probes: &[Vec<f32>]) -> f64 {
    if probes.is_empty() {
        return 1.0;
    }
    let mut s_ref = reference.make_scratch();
    let mut s_q = quantized.make_scratch();
    let same = probes
        .iter()
        .filter(|x| reference.argmax(x, &mut s_ref) == quantized.argmax(x, &mut s_q))
        .count();
    same as f64 / probes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use rand::{Rng, SeedableRng};

    fn probes(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f32>()).collect())
            .collect()
    }

    #[test]
    fn spec_fit_covers_range() {
        let s = QuantSpec::fit(8, 2.0);
        assert!((s.quantize(2.0) - 2.0).abs() < s.scale);
        assert!((s.quantize(-2.0) + 2.0).abs() < s.scale);
        // Saturation beyond the range.
        assert!(s.quantize(100.0) <= 2.0 + s.scale);
    }

    #[test]
    fn sixteen_bit_is_nearly_lossless() {
        let mut net = Mlp::new(&[4, 100, 5], Activation::Relu, 1);
        let reference = net.clone();
        let (_, rms) = quantize_mlp(&mut net, 16);
        assert!(rms < 1e-4, "rms={rms}");
        let agree = argmax_agreement(&reference, &net, &probes(500, 4, 2));
        assert!(agree > 0.99, "agreement={agree}");
    }

    #[test]
    fn lower_bits_increase_error_monotonically() {
        let base = Mlp::new(&[4, 100, 5], Activation::Relu, 3);
        let mut last_rms = 0.0;
        for bits in [16u32, 8, 4, 2] {
            let mut net = base.clone();
            let (_, rms) = quantize_mlp(&mut net, bits);
            assert!(
                rms >= last_rms,
                "{bits}-bit rms {rms} < previous {last_rms}"
            );
            last_rms = rms;
        }
    }

    #[test]
    fn lower_bits_disturb_more_decisions() {
        let base = Mlp::new(&[4, 32, 5], Activation::Relu, 4);
        let ps = probes(500, 4, 5);
        let agree_at = |bits: u32| {
            let mut net = base.clone();
            quantize_mlp(&mut net, bits);
            argmax_agreement(&base, &net, &ps)
        };
        let a16 = agree_at(16);
        let a2 = agree_at(2);
        assert!(a16 > 0.99, "16-bit agreement {a16}");
        assert!(
            a2 < a16,
            "2-bit ({a2}) must disagree more than 16-bit ({a16})"
        );
        assert!(a2 < 1.0);
    }

    #[test]
    fn quantize_is_idempotent() {
        let mut net = Mlp::new(&[3, 8, 2], Activation::Relu, 7);
        quantize_mlp(&mut net, 8);
        let once = net.flat_params();
        quantize_mlp(&mut net, 8);
        let twice = net.flat_params();
        for (a, b) in once.iter().zip(&twice) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn round_half_away_ties_away_from_zero() {
        assert_eq!(round_half_away(0.5), 1.0);
        assert_eq!(round_half_away(-0.5), -1.0);
        assert_eq!(round_half_away(1.5), 2.0);
        assert_eq!(round_half_away(-2.5), -3.0);
        assert_eq!(round_half_away(0.49), 0.0);
    }

    #[test]
    fn i8_row_round_trip_within_half_scale() {
        let src: Vec<f32> = (0..97).map(|i| (i as f32 * 0.731).sin() * 3.0).collect();
        let mut q = vec![0i8; src.len()];
        let scale = quantize_row_i8(&src, &mut q);
        assert!(scale > 0.0);
        for (&v, &qi) in src.iter().zip(&q) {
            assert!((-127..=127).contains(&i32::from(qi)));
            let back = f32::from(qi) * scale;
            assert!(
                (v - back).abs() <= scale * 0.5 + 1e-6,
                "v={v} back={back} scale={scale}"
            );
        }
    }

    #[test]
    fn zero_row_gets_unit_scale_and_zero_codes() {
        let src = [0.0f32; 8];
        let mut q = [1i8; 8];
        let scale = quantize_row_i8(&src, &mut q);
        assert_eq!(scale, 1.0);
        assert!(q.iter().all(|&v| v == 0));
    }

    #[test]
    fn quantized_forward_tracks_f32_decisions() {
        let net = Mlp::new(&[8, 64, 5], Activation::Relu, 11);
        let mut qnet = QuantizedMlp::from_mlp(&net);
        assert_eq!(qnet.sizes(), net.sizes());
        let ps = probes(400, 8, 12);
        let xs = Matrix::from_fn(ps.len(), 8, |r, c| ps[r][c]);
        let mut out = Matrix::zeros(0, 0);
        let q_decisions = qnet.decide_batch(&xs, &mut out);
        let mut scratch = net.make_scratch();
        let same = ps
            .iter()
            .zip(&q_decisions)
            .filter(|(x, &d)| net.argmax(x, &mut scratch) == d)
            .count();
        let agree = same as f64 / ps.len() as f64;
        assert!(agree > 0.9, "int8 agreement too low: {agree}");
    }

    #[test]
    fn quantized_forward_is_identical_across_backends_and_reruns() {
        let net = Mlp::new(&[6, 48, 33, 4], Activation::Tanh, 21);
        let xs = Matrix::from_fn(19, 6, |r, c| ((r * 6 + c) as f32 * 0.37).cos() * 2.0);
        let reference = {
            let _g = simd::force(simd::KernelBackend::Scalar);
            let mut qnet = QuantizedMlp::from_mlp(&net);
            let mut out = Matrix::zeros(0, 0);
            qnet.forward_into(&xs, &mut out);
            out.as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        };
        for &be in simd::available() {
            let _g = simd::force(be);
            let mut qnet = QuantizedMlp::from_mlp(&net);
            let mut out = Matrix::zeros(0, 0);
            for rerun in 0..2 {
                qnet.forward_into(&xs, &mut out);
                let got = out
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>();
                assert_eq!(got, reference, "{be} rerun {rerun}");
            }
        }
    }
}
