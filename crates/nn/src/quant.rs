//! Fixed-point quantization of MLP parameters.
//!
//! Table VIII assumes the deployed controller stores weights as 16-bit
//! fixed point; the paper leaves "optimization of ReSemble hardware
//! implementation" as future work. This module provides the tooling for
//! that study: quantize a trained network to n-bit fixed point (symmetric,
//! per-tensor scale) and measure the accuracy the datapath would actually
//! see (`ext_quantization` in the harness runs the end-to-end sweep).

use crate::mlp::Mlp;

/// Quantization description: symmetric fixed point with `bits` total bits
/// (1 sign bit) and a per-network scale chosen from the parameter range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantSpec {
    /// Total bits per parameter (including sign). 2..=32.
    pub bits: u32,
    /// Scale: real value = q * scale, q ∈ [-(2^(bits-1)-1), 2^(bits-1)-1].
    pub scale: f32,
}

impl QuantSpec {
    /// Choose the scale that covers `max_abs` with the given bit width.
    pub fn fit(bits: u32, max_abs: f32) -> Self {
        assert!((2..=32).contains(&bits), "bits must be in 2..=32");
        let qmax = ((1u64 << (bits - 1)) - 1) as f32;
        let scale = if max_abs > 0.0 { max_abs / qmax } else { 1.0 };
        Self { bits, scale }
    }

    /// Quantize one value (round-to-nearest, saturating).
    #[inline]
    pub fn quantize(&self, v: f32) -> f32 {
        let qmax = ((1u64 << (self.bits - 1)) - 1) as f32;
        let q = (v / self.scale).round().clamp(-qmax, qmax);
        q * self.scale
    }
}

/// Quantize every parameter of `net` to `bits`-bit fixed point in place;
/// returns the spec used and the RMS quantization error.
pub fn quantize_mlp(net: &mut Mlp, bits: u32) -> (QuantSpec, f32) {
    let params = net.flat_params();
    let max_abs = params.iter().fold(0.0f32, |m, p| m.max(p.abs()));
    let spec = QuantSpec::fit(bits, max_abs);
    let mut err_sq = 0.0f64;
    let quantized: Vec<f32> = params
        .iter()
        .map(|&p| {
            let q = spec.quantize(p);
            err_sq += ((q - p) as f64).powi(2);
            q
        })
        .collect();
    net.load_flat(&quantized);
    let rms = (err_sq / params.len().max(1) as f64).sqrt() as f32;
    (spec, rms)
}

/// Fraction of argmax decisions that change between `reference` and
/// `quantized` over the given probe states — the metric that matters for
/// an action-selection network.
pub fn argmax_agreement(reference: &Mlp, quantized: &Mlp, probes: &[Vec<f32>]) -> f64 {
    if probes.is_empty() {
        return 1.0;
    }
    let mut s_ref = reference.make_scratch();
    let mut s_q = quantized.make_scratch();
    let same = probes
        .iter()
        .filter(|x| reference.argmax(x, &mut s_ref) == quantized.argmax(x, &mut s_q))
        .count();
    same as f64 / probes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use rand::{Rng, SeedableRng};

    fn probes(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f32>()).collect())
            .collect()
    }

    #[test]
    fn spec_fit_covers_range() {
        let s = QuantSpec::fit(8, 2.0);
        assert!((s.quantize(2.0) - 2.0).abs() < s.scale);
        assert!((s.quantize(-2.0) + 2.0).abs() < s.scale);
        // Saturation beyond the range.
        assert!(s.quantize(100.0) <= 2.0 + s.scale);
    }

    #[test]
    fn sixteen_bit_is_nearly_lossless() {
        let mut net = Mlp::new(&[4, 100, 5], Activation::Relu, 1);
        let reference = net.clone();
        let (_, rms) = quantize_mlp(&mut net, 16);
        assert!(rms < 1e-4, "rms={rms}");
        let agree = argmax_agreement(&reference, &net, &probes(500, 4, 2));
        assert!(agree > 0.99, "agreement={agree}");
    }

    #[test]
    fn lower_bits_increase_error_monotonically() {
        let base = Mlp::new(&[4, 100, 5], Activation::Relu, 3);
        let mut last_rms = 0.0;
        for bits in [16u32, 8, 4, 2] {
            let mut net = base.clone();
            let (_, rms) = quantize_mlp(&mut net, bits);
            assert!(
                rms >= last_rms,
                "{bits}-bit rms {rms} < previous {last_rms}"
            );
            last_rms = rms;
        }
    }

    #[test]
    fn lower_bits_disturb_more_decisions() {
        let base = Mlp::new(&[4, 32, 5], Activation::Relu, 4);
        let ps = probes(500, 4, 5);
        let agree_at = |bits: u32| {
            let mut net = base.clone();
            quantize_mlp(&mut net, bits);
            argmax_agreement(&base, &net, &ps)
        };
        let a16 = agree_at(16);
        let a2 = agree_at(2);
        assert!(a16 > 0.99, "16-bit agreement {a16}");
        assert!(
            a2 < a16,
            "2-bit ({a2}) must disagree more than 16-bit ({a16})"
        );
        assert!(a2 < 1.0);
    }

    #[test]
    fn quantize_is_idempotent() {
        let mut net = Mlp::new(&[3, 8, 2], Activation::Relu, 7);
        quantize_mlp(&mut net, 8);
        let once = net.flat_params();
        quantize_mlp(&mut net, 8);
        let twice = net.flat_params();
        for (a, b) in once.iter().zip(&twice) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
