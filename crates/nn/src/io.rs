//! Model (de)serialization: save and load trained networks as JSON-free
//! plain text, mirroring the artifact's habit of checkpointing the
//! controller (`.pkl` files in the original; a simple versioned text
//! format here to stay inside the approved dependency set).
//!
//! Format:
//! ```text
//! resemble-mlp v1
//! sizes: 4 100 5
//! activation: relu
//! <one parameter per line, Rust float syntax>
//! ```

use crate::activation::Activation;
use crate::mlp::Mlp;
use std::io::{self, BufRead, Write};

const MAGIC: &str = "resemble-mlp v1";

fn act_name(a: Activation) -> &'static str {
    match a {
        Activation::Identity => "identity",
        Activation::Relu => "relu",
        Activation::Tanh => "tanh",
        Activation::Sigmoid => "sigmoid",
    }
}

fn act_from(name: &str) -> Option<Activation> {
    Some(match name {
        "identity" => Activation::Identity,
        "relu" => Activation::Relu,
        "tanh" => Activation::Tanh,
        "sigmoid" => Activation::Sigmoid,
        _ => return None,
    })
}

/// Write a network (architecture + parameters) to a writer.
///
/// `hidden_act` must be the activation the network was constructed with —
/// [`Mlp`] does not expose it per layer, so the caller supplies it (the
/// output layer is always linear).
pub fn save_mlp<W: Write>(w: &mut W, net: &Mlp, hidden_act: Activation) -> io::Result<()> {
    writeln!(w, "{MAGIC}")?;
    let sizes: Vec<String> = net.sizes().iter().map(|s| s.to_string()).collect();
    writeln!(w, "sizes: {}", sizes.join(" "))?;
    writeln!(w, "activation: {}", act_name(hidden_act))?;
    for p in net.flat_params() {
        writeln!(w, "{p}")?;
    }
    Ok(())
}

/// Read a network written by [`save_mlp`].
pub fn load_mlp<R: BufRead>(r: R) -> io::Result<Mlp> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut lines = r.lines();
    let magic = lines.next().ok_or_else(|| bad("empty file"))??;
    if magic.trim() != MAGIC {
        return Err(bad("not a resemble-mlp v1 file"));
    }
    let sizes_line = lines.next().ok_or_else(|| bad("missing sizes"))??;
    let sizes: Vec<usize> = sizes_line
        .strip_prefix("sizes:")
        .ok_or_else(|| bad("missing sizes header"))?
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| bad("bad size")))
        .collect::<io::Result<_>>()?;
    if sizes.len() < 2 {
        return Err(bad("need at least two layer sizes"));
    }
    let act_line = lines.next().ok_or_else(|| bad("missing activation"))??;
    let act = act_from(
        act_line
            .strip_prefix("activation:")
            .ok_or_else(|| bad("missing activation header"))?
            .trim(),
    )
    .ok_or_else(|| bad("unknown activation"))?;
    let mut net = Mlp::new(&sizes, act, 0);
    let mut params = Vec::with_capacity(net.param_count());
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        params.push(t.parse::<f32>().map_err(|_| bad("bad parameter"))?);
    }
    if params.len() != net.param_count() {
        return Err(bad("parameter count mismatch"));
    }
    net.load_flat(&params);
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_outputs() {
        let net = Mlp::new(&[4, 10, 5], Activation::Relu, 42);
        let mut buf = Vec::new();
        save_mlp(&mut buf, &net, Activation::Relu).unwrap();
        let back = load_mlp(&buf[..]).unwrap();
        let x = [0.2f32, 0.9, 0.4, 0.1];
        assert_eq!(net.predict(&x), back.predict(&x));
        assert_eq!(back.sizes(), net.sizes());
    }

    #[test]
    fn rejects_garbage() {
        assert!(load_mlp("nope".as_bytes()).is_err());
        assert!(
            load_mlp("resemble-mlp v1\nsizes: 2 2\nactivation: relu\n1.0\n".as_bytes()).is_err()
        ); // too few params
        assert!(load_mlp("resemble-mlp v1\nsizes: 2 2\nactivation: cubic\n".as_bytes()).is_err());
    }

    #[test]
    fn all_activations_roundtrip() {
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
        ] {
            let net = Mlp::new(&[2, 3, 2], act, 1);
            let mut buf = Vec::new();
            save_mlp(&mut buf, &net, act).unwrap();
            let back = load_mlp(&buf[..]).unwrap();
            assert_eq!(net.predict(&[0.5, -0.5]), back.predict(&[0.5, -0.5]));
        }
    }
}
