//! Binary model checkpoints: a deterministic, versioned serialization of
//! an [`Mlp`] used by `resemble-serve` to park and warm-resume session
//! controllers.
//!
//! Unlike the human-readable [`crate::io`] text format, this format is
//! **bit-exact by construction**: every `f32` parameter is written as its
//! IEEE-754 bit pattern in little-endian byte order, so a save → load
//! round trip reproduces the network exactly (same Q-values to the bit)
//! on any platform. The header is versioned and self-describing so future
//! layout changes can be detected instead of misread.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic            8 bytes   b"RSMBMLP1"
//! version          u32       1
//! hidden_act       u8        0=identity 1=relu 2=tanh 3=sigmoid
//! reserved         3 bytes   zero
//! n_sizes          u32       number of layer sizes (>= 2)
//! sizes            u32 * n   layer widths, input first
//! param_count      u64       must equal the architecture's count
//! params           u32 * c   f32 bit patterns, [`Mlp::flat_params`] order
//! ```

use crate::activation::Activation;
use crate::mlp::Mlp;
use std::io::{self, Read, Write};

/// Magic bytes opening every binary MLP checkpoint.
pub const MLP_MAGIC: [u8; 8] = *b"RSMBMLP1";

/// Current format version written by [`save_mlp_binary`].
pub const MLP_VERSION: u32 = 1;

/// Widest layer accepted when loading (sanity bound against corrupt
/// headers allocating absurd networks).
const MAX_LAYER_WIDTH: u32 = 1 << 20;

/// Most layer sizes accepted when loading.
const MAX_SIZES: u32 = 64;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn act_code(a: Activation) -> u8 {
    match a {
        Activation::Identity => 0,
        Activation::Relu => 1,
        Activation::Tanh => 2,
        Activation::Sigmoid => 3,
    }
}

fn act_from_code(code: u8) -> Option<Activation> {
    Some(match code {
        0 => Activation::Identity,
        1 => Activation::Relu,
        2 => Activation::Tanh,
        3 => Activation::Sigmoid,
        _ => return None,
    })
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Write `net` as a binary checkpoint. The byte stream is a pure function
/// of the network's architecture, hidden activation, and parameter bits —
/// two bit-identical networks serialize to identical bytes.
pub fn save_mlp_binary<W: Write>(w: &mut W, net: &Mlp) -> io::Result<()> {
    w.write_all(&MLP_MAGIC)?;
    w.write_all(&MLP_VERSION.to_le_bytes())?;
    w.write_all(&[act_code(net.hidden_activation()), 0, 0, 0])?;
    let sizes = net.sizes();
    let n = u32::try_from(sizes.len()).map_err(|_| bad("too many layers"))?;
    w.write_all(&n.to_le_bytes())?;
    for &s in sizes {
        let s = u32::try_from(s).map_err(|_| bad("layer too wide"))?;
        w.write_all(&s.to_le_bytes())?;
    }
    let params = net.flat_params();
    w.write_all(&(params.len() as u64).to_le_bytes())?;
    for p in params {
        w.write_all(&p.to_bits().to_le_bytes())?;
    }
    Ok(())
}

/// Read a network written by [`save_mlp_binary`], validating the header
/// against the declared architecture before any allocation. The loaded
/// network's parameters are bit-identical to the saved ones.
pub fn load_mlp_binary<R: Read>(r: &mut R) -> io::Result<Mlp> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != MLP_MAGIC {
        return Err(bad("not a ReSemble MLP checkpoint (bad magic)"));
    }
    let version = read_u32(r)?;
    if version != MLP_VERSION {
        return Err(bad(format!("unsupported checkpoint version {version}")));
    }
    let mut actb = [0u8; 4];
    r.read_exact(&mut actb)?;
    let act = act_from_code(actb[0]).ok_or_else(|| bad("unknown activation code"))?;
    let n_sizes = read_u32(r)?;
    if !(2..=MAX_SIZES).contains(&n_sizes) {
        return Err(bad(format!("implausible layer count {n_sizes}")));
    }
    let mut sizes = Vec::with_capacity(n_sizes as usize);
    for _ in 0..n_sizes {
        let s = read_u32(r)?;
        if s == 0 || s > MAX_LAYER_WIDTH {
            return Err(bad(format!("implausible layer width {s}")));
        }
        sizes.push(s as usize);
    }
    let expect: usize = sizes
        .windows(2)
        .map(|p| p[0] * p[1] + p[1]) // weights + biases per layer
        .sum();
    let param_count = read_u64(r)?;
    if param_count != expect as u64 {
        return Err(bad(format!(
            "parameter count {param_count} does not match architecture ({expect})"
        )));
    }
    let mut params = Vec::with_capacity(expect);
    let mut b = [0u8; 4];
    for _ in 0..expect {
        r.read_exact(&mut b)?;
        params.push(f32::from_bits(u32::from_le_bytes(b)));
    }
    let mut net = Mlp::new(&sizes, act, 0);
    net.load_flat(&params);
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(net: &Mlp) -> Vec<u32> {
        net.flat_params().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let net = Mlp::new(&[4, 100, 5], Activation::Relu, 42);
        let mut buf = Vec::new();
        save_mlp_binary(&mut buf, &net).expect("saves");
        let loaded = load_mlp_binary(&mut buf.as_slice()).expect("loads");
        assert_eq!(loaded.sizes(), net.sizes());
        assert_eq!(loaded.hidden_activation(), Activation::Relu);
        assert_eq!(bits(&loaded), bits(&net), "parameter bits diverged");
        // Q-values bit-identical through a forward pass too.
        let x = [0.1f32, -0.9, 0.3, 2.5];
        let a: Vec<u32> = net.predict(&x).iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = loaded.predict(&x).iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn serialization_is_deterministic() {
        let net = Mlp::new(&[3, 17, 4], Activation::Tanh, 7);
        let mut a = Vec::new();
        let mut b = Vec::new();
        save_mlp_binary(&mut a, &net).expect("saves");
        save_mlp_binary(&mut b, &net).expect("saves");
        assert_eq!(a, b, "same net must serialize to identical bytes");
        let clone = net.clone();
        let mut c = Vec::new();
        save_mlp_binary(&mut c, &clone).expect("saves");
        assert_eq!(a, c);
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let net = Mlp::new(&[2, 8, 3], Activation::Relu, 1);
        let mut buf = Vec::new();
        save_mlp_binary(&mut buf, &net).expect("saves");

        let mut corrupt = buf.clone();
        corrupt[0] ^= 0xFF;
        assert!(load_mlp_binary(&mut corrupt.as_slice()).is_err(), "magic");

        let mut vers = buf.clone();
        vers[8] = 99;
        assert!(load_mlp_binary(&mut vers.as_slice()).is_err(), "version");

        let truncated = &buf[..buf.len() - 3];
        assert!(
            load_mlp_binary(&mut &truncated[..]).is_err(),
            "truncated stream"
        );
    }

    #[test]
    fn rejects_mismatched_param_count() {
        let net = Mlp::new(&[2, 4, 2], Activation::Relu, 3);
        let mut buf = Vec::new();
        save_mlp_binary(&mut buf, &net).expect("saves");
        // param_count field sits after magic(8)+version(4)+act(4)+n(4)+sizes(12).
        let off = 8 + 4 + 4 + 4 + 12;
        buf[off..off + 8].copy_from_slice(&999u64.to_le_bytes());
        assert!(load_mlp_binary(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn preserves_exact_float_bit_patterns() {
        let mut net = Mlp::new(&[2, 2, 2], Activation::Relu, 9);
        // Force awkward values: -0.0, subnormal, NaN payload.
        let mut p = net.flat_params();
        p[0] = -0.0;
        p[1] = f32::from_bits(1); // smallest subnormal
        p[2] = f32::from_bits(0x7FC0_1234); // NaN with payload
        net.load_flat(&p);
        let mut buf = Vec::new();
        save_mlp_binary(&mut buf, &net).expect("saves");
        let loaded = load_mlp_binary(&mut buf.as_slice()).expect("loads");
        assert_eq!(bits(&loaded), bits(&net));
    }
}
