//! First-order optimizers applying accumulated gradients to parameters.

use serde::{Deserialize, Serialize};

/// An optimizer updates a flat parameter vector from a flat gradient vector.
///
/// MLP parameters are exposed as flat slices (per layer: weights then bias),
/// so optimizers are shape-agnostic; stateful optimizers (Adam) lazily size
/// their moment buffers on first use and are keyed to one parameter vector.
pub trait Optimizer {
    /// Apply one update step: `params -= f(grads)`.
    ///
    /// `grads` holds dL/dθ (already averaged over the batch by the caller).
    fn step(&mut self, params: &mut [f32], grads: &[f32]);

    /// Learning rate currently in effect.
    fn learning_rate(&self) -> f32;

    /// Replace the learning rate (supports schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent: `θ -= lr * g`.
///
/// This is the update rule in the paper's Eq. 11 and the one a hardware
/// implementation would use (no per-parameter state).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        for (p, g) in params.iter_mut().zip(grads) {
            *p -= self.lr * g;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba), used for the software-side ablations; the
/// deployable configuration uses [`Sgd`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999) and eps 1e-8.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_descends_quadratic() {
        // minimize f(x) = (x-3)^2, grad = 2(x-3)
        let mut x = [0.0f32];
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x={}", x[0]);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut x = [0.0f32, 10.0];
        let mut opt = Adam::new(0.2);
        for _ in 0..500 {
            let g = [2.0 * (x[0] - 3.0), 2.0 * (x[1] + 1.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-2);
        assert!((x[1] + 1.0).abs() < 1e-2);
    }

    #[test]
    fn learning_rate_is_settable() {
        let mut opt = Sgd::new(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_lr() {
        let _ = Sgd::new(0.0);
    }
}
