//! # resemble-nn
//!
//! Minimal dependency-free `f32` neural-network library backing the
//! ReSemble MLP controller and the Voyager-like neural prefetcher. The
//! paper's controller is deliberately tiny (a 4→100→5 MLP, Table IV), so
//! this crate favours exactness, determinism, and allocation-free hot
//! paths over generality: row-major matrices, manual backprop, SGD (the
//! hardware-faithful rule of Eq. 11) plus Adam for software ablations.
//!
//! The batched kernels dispatch through [`simd`] to runtime-detected
//! AVX2/SSE2 implementations (overridable with `RESEMBLE_SIMD`), all
//! bit-identical to the scalar fallback by construction.
//!
//! ```
//! use resemble_nn::{Activation, Mlp};
//!
//! let net = Mlp::new(&[4, 100, 5], Activation::Relu, 42);
//! let q = net.predict(&[0.1, 0.9, 0.3, 0.5]);
//! assert_eq!(q.len(), 5);
//! ```

#![warn(missing_docs)]

pub mod activation;
pub mod align;
pub mod checkpoint;
pub mod io;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod quant;
pub mod simd;

pub use activation::Activation;
pub use align::AlignedVec;
pub use checkpoint::{load_mlp_binary, save_mlp_binary};
pub use io::{load_mlp, save_mlp};
pub use matrix::Matrix;
pub use mlp::{BatchScratch, GradBuffer, Mlp, Scratch};
pub use optim::{Adam, Optimizer, Sgd};
pub use quant::{argmax_agreement, quantize_mlp, QuantSpec, QuantizedMlp};
pub use simd::{CpuCaps, KernelBackend};
