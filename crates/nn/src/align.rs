//! Cache-line-aligned flat `f32` storage for the batched kernels.
//!
//! [`AlignedVec`] is the backing store of [`crate::Matrix`] (and, through
//! it, of every `BatchScratch` buffer) plus the replay-memory state rings:
//! a grow-only `f32` buffer whose allocation is always 64-byte aligned, so
//! every matrix row 16 elements apart starts on a cache-line boundary and
//! aligned SIMD loads of the buffer head are always legal. The kernels in
//! [`crate::simd`] still issue unaligned loads (row offsets inside a
//! buffer are not generally 64-byte multiples), but alignment keeps rows
//! from straddling an extra line and makes the layout predictable for
//! profiling.
//!
//! Only the small `Vec` subset the kernels need is implemented: zero-fill
//! construction, grow-only `resize`, `clear`, and slice views (via
//! `Deref`). Capacity never shrinks, so steady-state callers that resize
//! to the same shapes pay no allocation — the same contract the scratch
//! buffers already rely on.

use serde::{Deserialize, Serialize};
use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment of every allocation, in bytes (one x86 cache line).
pub const BUFFER_ALIGN: usize = 64;

/// A 64-byte-aligned, grow-only `f32` buffer.
pub struct AlignedVec {
    ptr: NonNull<f32>,
    len: usize,
    cap: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively (no interior
// sharing), exactly like Vec<f32>, so it can move between threads.
unsafe impl Send for AlignedVec {}
// SAFETY: shared references only expose &[f32] reads with no interior
// mutability, so concurrent shared access is race-free, like Vec<f32>.
unsafe impl Sync for AlignedVec {}

impl AlignedVec {
    /// An empty buffer with no allocation.
    pub const fn new() -> Self {
        Self {
            ptr: NonNull::dangling(),
            len: 0,
            cap: 0,
        }
    }

    /// A zero-filled buffer of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        let mut v = Self::new();
        v.resize(len, 0.0);
        v
    }

    /// A buffer holding a copy of `data`.
    pub fn from_slice(data: &[f32]) -> Self {
        let mut v = Self::new();
        v.grow_to(data.len());
        // SAFETY: grow_to allocated capacity for data.len() elements.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), v.ptr.as_ptr(), data.len());
        }
        v.len = data.len();
        v
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current capacity in elements (never shrinks).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Immutable slice view.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: ptr is valid for len elements (dangling only when len==0).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Mutable slice view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        // SAFETY: ptr is valid for len elements and uniquely owned.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Set the length to zero (capacity is retained).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Resize to `new_len` elements; elements past the old length are set
    /// to `value`. Capacity only grows.
    pub fn resize(&mut self, new_len: usize, value: f32) {
        if new_len > self.cap {
            self.grow_to(new_len);
        }
        if new_len > self.len {
            // SAFETY: capacity covers new_len; the gap is uninitialized or
            // stale, and f32 has no invalid bit patterns to worry about.
            unsafe {
                let gap = std::slice::from_raw_parts_mut(
                    self.ptr.as_ptr().add(self.len),
                    new_len - self.len,
                );
                gap.fill(value);
            }
        }
        self.len = new_len;
    }

    /// Reallocate to hold at least `min_cap` elements (aligned, grow-only,
    /// at least doubling so repeated growth is amortized).
    fn grow_to(&mut self, min_cap: usize) {
        debug_assert!(min_cap > self.cap);
        // Round up to a whole number of cache lines (16 f32 per line).
        let new_cap = min_cap
            .max(self.cap * 2)
            .checked_next_multiple_of(BUFFER_ALIGN / std::mem::size_of::<f32>())
            .expect("AlignedVec capacity overflow");
        let bytes = new_cap
            .checked_mul(std::mem::size_of::<f32>())
            .expect("AlignedVec capacity overflow");
        let layout =
            Layout::from_size_align(bytes, BUFFER_ALIGN).expect("AlignedVec layout invalid");
        // SAFETY: layout has non-zero size (new_cap >= 16 when min_cap > 0;
        // min_cap == 0 never reaches here because cap starts at 0).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(new_ptr) = NonNull::new(raw.cast::<f32>()) else {
            handle_alloc_error(layout)
        };
        if self.cap > 0 {
            // SAFETY: both allocations are live and cover self.len elements.
            unsafe {
                std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), new_ptr.as_ptr(), self.len);
                self.dealloc_current();
            }
        }
        self.ptr = new_ptr;
        self.cap = new_cap;
    }

    /// SAFETY: caller must ensure `self.cap > 0` and that the allocation is
    /// no longer referenced afterwards.
    unsafe fn dealloc_current(&mut self) {
        let layout = Layout::from_size_align(self.cap * std::mem::size_of::<f32>(), BUFFER_ALIGN)
            .expect("AlignedVec layout invalid");
        dealloc(self.ptr.as_ptr().cast(), layout);
    }
}

impl Drop for AlignedVec {
    fn drop(&mut self) {
        if self.cap > 0 {
            // SAFETY: the allocation is live and owned; nothing references
            // it after drop.
            unsafe { self.dealloc_current() };
        }
    }
}

impl Default for AlignedVec {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for AlignedVec {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl std::fmt::Debug for AlignedVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq for AlignedVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Deref for AlignedVec {
    type Target = [f32];
    #[inline]
    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl DerefMut for AlignedVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f32] {
        self.as_mut_slice()
    }
}

impl Serialize for AlignedVec {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl Deserialize for AlignedVec {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_cache_line_aligned() {
        for n in [1usize, 15, 16, 17, 1000] {
            let v = AlignedVec::zeroed(n);
            assert_eq!(v.as_slice().as_ptr() as usize % BUFFER_ALIGN, 0, "len {n}");
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn resize_grows_zero_fills_and_keeps_capacity() {
        let mut v = AlignedVec::zeroed(4);
        v.as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        v.resize(8, 0.5);
        assert_eq!(&v[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&v[4..], &[0.5; 4]);
        let cap = v.capacity();
        v.clear();
        assert!(v.is_empty());
        v.resize(6, 0.0);
        assert_eq!(v.capacity(), cap, "shrinking resize must not reallocate");
        // clear() + resize() re-fills the whole range, like the scratch
        // buffers rely on.
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn clone_eq_debug_and_serialize() {
        let v = AlignedVec::from_slice(&[1.5, -2.0, 0.0]);
        let w = v.clone();
        assert_eq!(v, w);
        assert_ne!(v, AlignedVec::zeroed(3));
        assert_eq!(format!("{v:?}"), "[1.5, -2.0, 0.0]");
        let mut out = String::new();
        v.serialize_json(&mut out);
        assert_eq!(out, "[1.5,-2,0]");
    }

    #[test]
    fn empty_buffer_has_no_allocation() {
        let v = AlignedVec::new();
        assert_eq!(v.len(), 0);
        assert_eq!(v.capacity(), 0);
        assert!(v.as_slice().is_empty());
    }
}
