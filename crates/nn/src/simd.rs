//! Runtime-dispatched SIMD kernels for the batched controller datapath,
//! bit-identical across backends *by construction*.
//!
//! Every batched kernel in this crate funnels through this module. Five
//! backends implement each kernel: explicit AVX-512 (16-lane), AVX2
//! (8-lane), and SSE2 (4-lane) `std::arch` intrinsics on x86-64, NEON
//! (4-lane) intrinsics on aarch64, and the portable scalar code (the
//! former `matrix.rs` / `mlp.rs` / `activation.rs` loops, moved here
//! verbatim). The backend is chosen once at startup by [`dispatched`]
//! via runtime feature detection, overridable with
//! `RESEMBLE_SIMD={avx512,avx2,sse2,neon,scalar}`; tests and benches can
//! pin a backend per thread with [`force`].
//!
//! # Bit-identity by construction
//!
//! The repo's determinism gates compare f32 results bitwise, so the
//! vector paths must produce *byte-identical* output to the scalar
//! fallback — not merely close. That is guaranteed structurally, never
//! by tolerance:
//!
//! - **One accumulator per output element.** Vectorization is only
//!   across independent output elements / batch lanes; no per-element
//!   sum is ever split across vector lanes, so there are no horizontal
//!   reductions and no reassociation.
//! - **Inner dimension in ascending scalar order per lane.** Each lane
//!   walks `k = 0, 1, 2, …` exactly like the scalar loop.
//! - **Non-fused `mul` + `add` only.** No FMA intrinsics anywhere (and
//!   Rust never contracts `a + w * x` on its own), so each lane performs
//!   the same two IEEE-754 rounding steps as the scalar code, in the
//!   same operand order.
//! - **Scalar tails run the identical per-element expressions.** Slice
//!   lengths that are not a multiple of the vector width fall through to
//!   the same scalar statements the fallback uses.
//! - **Compares and selects are bit-exact.** ReLU clamps through
//!   `andnot(x < 0, x)` rather than `max(0, x)`, preserving `-0.0` and
//!   NaN exactly like the scalar `if *x < 0.0 { *x = 0.0 }`; derivative
//!   masks multiply by an `and`-selected `{0.0, 1.0}`, reproducing the
//!   scalar `d * 0.0` / `d * 1.0` including the sign of a `±0.0` result.
//!
//! Consequently AVX2, SSE2, and scalar agree bit-for-bit on every input,
//! which the backend-sweep proptest (`crates/nn/tests/backend_sweep.rs`)
//! and this module's unit tests pin.
//!
//! # Int8 kernels: exactness, not order
//!
//! The int8 GEMM ([`gemm_i8_i32`]) obeys a *different* — and simpler —
//! determinism argument. Every product of two i8 values and every partial
//! sum fits an i32 exactly (|Σ| ≤ k·127², and the wrapper asserts `k ≤
//! 130_000` so that bound stays below `i32::MAX`), and exact integer
//! addition is associative, so *any* summation order — including the
//! horizontal reductions the float kernels must avoid — yields the same
//! i32. Backends therefore agree byte-for-byte by arithmetic exactness
//! rather than by matching accumulation order; the cross-backend sweep in
//! `crates/nn/tests/int8_sweep.rs` pins it. [`gemm_i8p_lanes`] applies
//! the same argument to the small-`k`, wide-`fan_out` layer shape (the
//! wide frozen controller's input layer): the weights are pre-staged as
//! i16 `(k, k+1)` pairs interleaved across outputs so one `madd` yields
//! eight exact i32 partial sums, and again any accumulation order gives
//! identical bytes.
//!
//! The elementwise int8 helpers ([`max_abs_f32`] and [`quantize_i8`])
//! are dispatched too, with a third determinism argument: `max` over a
//! set is order-free, and a per-element map has no accumulation at all —
//! every backend evaluates the identical IEEE expression per element
//! (multiply by the reciprocal scale, round half away from zero computed
//! as exact truncate-plus-fraction-compare, clamp, narrow). The one
//! caveat, documented on [`quantize_i8`], is non-finite input: scalar
//! Rust saturating casts and x86 `cvttps2dq` disagree on NaN/±inf, so
//! cross-backend identity is promised for finite inputs only. The
//! dequant/bias/activation epilogue stays in `quant.rs` as shared
//! non-dispatched code, so the full quantized forward pass inherits the
//! same guarantee.
//!
//! # VNNI dot-product forms
//!
//! On VNNI-capable hosts the int8 GEMMs upgrade themselves within their
//! tier — the [`KernelBackend`] stays `Avx512`/`Avx2`, [`capabilities`]
//! picks the instruction form:
//!
//! - `avx512_vnni` (EVEX): [`gemm_i8_i32`] uses `vpdpbusd` — one fused
//!   u8×i8 dot per 64 bytes, made signed-exact by the classic offset
//!   trick (`x + 128` via sign-bit XOR, then subtract `128·Σw`, with the
//!   correction's `Σw` recovered from a `vpsadbw` running sum). The
//!   accumulator lanes may wrap in i32, but all arithmetic is mod 2³²
//!   and the true dot is bounded by the wrapper's `k ≤ 130_000` assert,
//!   so the corrected result is the exact i32 — the same exactness
//!   argument as above, extended to modular form. [`gemm_i8p_lanes`]
//!   uses `vpdpwssd`, which fuses the `madd`+`add` pair-sum step into
//!   one instruction with identical i32 results.
//! - `avx_vnni` (VEX, 256-bit): the same `vpdpwssd` fusion at AVX2
//!   width (`_mm256_dpwssd_avx_epi32`) for hosts with VNNI but no
//!   AVX-512 state.
//!
//! Because every form computes the identical exact i32s, VNNI needs no
//! new byte-equality argument — the existing int8 sweeps pin it.
//!
//! [`capabilities`] reports the feature bits backing this selection
//! (`avx512f`, `avx512bw`, `avx512-vnni`, `avx-vnni`, `neon`); the
//! `Avx512` tier requires `avx512f` *and* `avx512bw` (byte/word ops in
//! the int8 kernels), which every AVX-512 server core since Skylake-SP
//! provides.
//!
//! The `simd-outside-kernel` lint rule keeps all `std::arch` usage inside
//! this file; add new kernels here (see CONTRIBUTING.md).

use std::cell::Cell;
use std::sync::OnceLock;

/// Environment variable that overrides backend selection
/// (`avx2`/`sse2`/`scalar`); unavailable or unknown values fall back to
/// the best detected backend with a warning on stderr.
pub const BACKEND_ENV: &str = "RESEMBLE_SIMD";

/// A kernel implementation the dispatcher can route to.
///
/// Safety invariant: non-`Scalar` values are only handed to the kernel
/// wrappers after the corresponding ISA was confirmed present —
/// [`dispatched`] detects before selecting, [`force`] asserts
/// [`KernelBackend::is_available`], and [`available`] lists only detected
/// backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// 16-lane f32 vectors via AVX-512F intrinsics (int8 kernels also
    /// need AVX-512BW, so availability requires both).
    Avx512,
    /// 8-lane f32 vectors via AVX2 intrinsics.
    Avx2,
    /// 4-lane f32 vectors via SSE2 intrinsics (x86-64 baseline).
    Sse2,
    /// 4-lane f32 vectors via NEON intrinsics (aarch64 baseline).
    Neon,
    /// The portable scalar fallback (always available).
    Scalar,
}

impl KernelBackend {
    /// Every backend the crate knows, widest first, scalar last. Names
    /// parse on every architecture (so `RESEMBLE_SIMD=neon` on x86 warns
    /// and clamps rather than reading as a typo); availability is what
    /// gates actual dispatch. Tests iterate this to log skipped ISAs.
    pub const ALL: [KernelBackend; 5] = [
        KernelBackend::Avx512,
        KernelBackend::Avx2,
        KernelBackend::Sse2,
        KernelBackend::Neon,
        KernelBackend::Scalar,
    ];

    /// Stable lowercase name, as accepted by [`BACKEND_ENV`] and reported
    /// in benchmark/telemetry output.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Avx512 => "avx512",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Sse2 => "sse2",
            KernelBackend::Neon => "neon",
            KernelBackend::Scalar => "scalar",
        }
    }

    /// Parse a [`KernelBackend::name`] string (ASCII case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        Self::ALL
            .into_iter()
            .find(|b| s.eq_ignore_ascii_case(b.name()))
    }

    /// Whether this backend's ISA is present on the current host.
    pub fn is_available(self) -> bool {
        match self {
            KernelBackend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512bw")
            }
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Sse2 => std::arch::is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "aarch64")]
            KernelBackend::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            _ => false,
        }
    }
}

impl std::fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Best backend the host supports, ignoring the environment override:
/// the first available entry of [`KernelBackend::ALL`] (widest first).
fn detect_best() -> KernelBackend {
    KernelBackend::ALL
        .into_iter()
        .find(|b| b.is_available())
        .unwrap_or(KernelBackend::Scalar)
}

/// All backends available on this host, best first (scalar is always
/// last). Use this to sweep backends in tests and benchmarks.
pub fn available() -> &'static [KernelBackend] {
    static LIST: OnceLock<Vec<KernelBackend>> = OnceLock::new();
    LIST.get_or_init(|| {
        KernelBackend::ALL
            .into_iter()
            .filter(|b| b.is_available())
            .collect()
    })
}

/// The process-wide backend, chosen once on first use: the best detected
/// ISA, unless [`BACKEND_ENV`] requests another *available* backend.
pub fn dispatched() -> KernelBackend {
    static CHOSEN: OnceLock<KernelBackend> = OnceLock::new();
    *CHOSEN.get_or_init(|| {
        let best = detect_best();
        let Ok(req) = std::env::var(BACKEND_ENV) else {
            return best;
        };
        match KernelBackend::parse(&req) {
            Some(b) if b.is_available() => b,
            Some(b) => {
                eprintln!(
                    "resemble-nn: {BACKEND_ENV}={} is not available on this host \
                     (detected features: {}); using {}",
                    b.name(),
                    capabilities().summary(),
                    best.name()
                );
                best
            }
            None => {
                let expected = KernelBackend::ALL.map(KernelBackend::name).join("|");
                eprintln!(
                    "resemble-nn: unrecognized {BACKEND_ENV} value {req:?} \
                     (expected {expected}); using {}",
                    best.name()
                );
                best
            }
        }
    })
}

/// CPU feature bits backing kernel-lane selection, detected once per
/// process. The `Avx512` tier gates on `avx512f && avx512bw`; within a
/// tier the int8 GEMMs pick their VNNI instruction form from
/// `avx512_vnni`/`avx_vnni` (see the module docs). Telemetry and
/// benchmark reports echo [`CpuCaps::summary`] so skipped metrics can
/// name what the host lacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuCaps {
    /// Baseline 128-bit SIMD (architecturally guaranteed on x86-64).
    pub sse2: bool,
    /// 256-bit integer/float SIMD.
    pub avx2: bool,
    /// AVX-512 foundation, including the OS having enabled zmm state
    /// (XCR0 opmask/zmm bits) — false if the CPU has it but the OS
    /// doesn't save the registers.
    pub avx512f: bool,
    /// AVX-512 byte/word instructions — required alongside `avx512f` for
    /// the `Avx512` tier's int8 kernels (sign-extends, `vpsadbw`).
    pub avx512bw: bool,
    /// AVX-512 VNNI int8 dot-product instructions (`vpdpbusd`/`vpdpwssd`
    /// in EVEX form); implies usable AVX-512 state.
    pub avx512_vnni: bool,
    /// AVX-VNNI: the VEX-encoded (256-bit) dot-product subset, for CPUs
    /// with VNNI but without full AVX-512.
    pub avx_vnni: bool,
    /// aarch64 Advanced SIMD (architecturally baseline on aarch64).
    pub neon: bool,
}

impl CpuCaps {
    /// Space-separated list of the detected feature names, stable order,
    /// `"none"` when nothing beyond portable scalar is present — for
    /// telemetry snapshots and benchmark reports.
    pub fn summary(self) -> String {
        let mut names = Vec::new();
        if self.sse2 {
            names.push("sse2");
        }
        if self.avx2 {
            names.push("avx2");
        }
        if self.avx512f {
            names.push("avx512f");
        }
        if self.avx512bw {
            names.push("avx512bw");
        }
        if self.avx512_vnni {
            names.push("avx512-vnni");
        }
        if self.avx_vnni {
            names.push("avx-vnni");
        }
        if self.neon {
            names.push("neon");
        }
        if names.is_empty() {
            "none".to_owned()
        } else {
            names.join(" ")
        }
    }
}

/// The host's CPU feature bits, detected once (see [`CpuCaps`]).
pub fn capabilities() -> CpuCaps {
    static CAPS: OnceLock<CpuCaps> = OnceLock::new();
    *CAPS.get_or_init(detect_caps)
}

#[cfg(target_arch = "x86_64")]
fn detect_caps() -> CpuCaps {
    use core::arch::x86_64::{__cpuid, __cpuid_count, _xgetbv};

    /// `xgetbv(0)` reads XCR0, the OS-enabled extended-state mask.
    ///
    /// SAFETY: caller only invokes this after CPUID leaf 1 ECX reports
    /// both XSAVE (bit 26) and OSXSAVE (bit 27) — OSXSAVE set means the
    /// OS enabled CR4.OSXSAVE, which architecturally makes XGETBV(0)
    /// legal.
    #[target_feature(enable = "xsave")]
    unsafe fn xcr0() -> u64 {
        // SAFETY: target_feature-only unsafety; the caller contract above
        // guarantees the instruction is enabled.
        unsafe { _xgetbv(0) }
    }

    // CPUID leaf 0 is valid on every x86-64 CPU (the ISA guarantees the
    // instruction, leaf 0 reports the max leaf) and the intrinsic is safe
    // on this target; leaf 1 predates the 64-bit ISA.
    let max_leaf = __cpuid(0).eax;
    let leaf1 = __cpuid(1);
    let osxsave = leaf1.ecx & (1 << 26) != 0 && leaf1.ecx & (1 << 27) != 0;
    // SAFETY: xcr0() is guarded on XSAVE+OSXSAVE per its contract.
    let xcr0 = if osxsave { unsafe { xcr0() } } else { 0 };
    // AVX needs xmm+ymm state (XCR0 bits 1-2); AVX-512 additionally needs
    // opmask+zmm state (bits 5-7).
    let os_avx = xcr0 & 0x6 == 0x6;
    let os_avx512 = os_avx && xcr0 & 0xe0 == 0xe0;

    let (l7_0, l7_max_sub) = if max_leaf >= 7 {
        // Guarded on max_leaf >= 7, so leaf 7 subleaf 0 is valid.
        let r = __cpuid_count(7, 0);
        (Some(r), r.eax)
    } else {
        (None, 0)
    };
    let l7_1 = if max_leaf >= 7 && l7_max_sub >= 1 {
        // Guarded on leaf 7 existing and its EAX (max subleaf) covering
        // subleaf 1.
        Some(__cpuid_count(7, 1))
    } else {
        None
    };

    let ebx7 = l7_0.map_or(0, |r| r.ebx);
    let ecx7 = l7_0.map_or(0, |r| r.ecx);
    let eax7_1 = l7_1.map_or(0, |r| r.eax);
    CpuCaps {
        sse2: std::arch::is_x86_feature_detected!("sse2"),
        avx2: std::arch::is_x86_feature_detected!("avx2"),
        avx512f: os_avx512 && ebx7 & (1 << 16) != 0,
        avx512bw: os_avx512 && ebx7 & (1 << 30) != 0,
        avx512_vnni: os_avx512 && ecx7 & (1 << 11) != 0,
        avx_vnni: os_avx && eax7_1 & (1 << 4) != 0,
        neon: false,
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_caps() -> CpuCaps {
    CpuCaps {
        sse2: false,
        avx2: false,
        avx512f: false,
        avx512bw: false,
        avx512_vnni: false,
        avx_vnni: false,
        #[cfg(target_arch = "aarch64")]
        neon: std::arch::is_aarch64_feature_detected!("neon"),
        #[cfg(not(target_arch = "aarch64"))]
        neon: false,
    }
}

thread_local! {
    static FORCED: Cell<Option<KernelBackend>> = const { Cell::new(None) };
}

/// The backend the kernels on this thread currently use: the innermost
/// [`force`] override, or else the process-wide [`dispatched`] choice.
/// Never panics.
pub fn active() -> KernelBackend {
    FORCED.with(Cell::get).unwrap_or_else(dispatched)
}

/// Pin `backend` as this thread's active backend until the returned
/// guard drops (restoring the previous state). Panics if the backend is
/// not available on this host — the availability check is what keeps the
/// unsafe ISA dispatch sound.
#[must_use = "the override ends when the guard is dropped"]
pub fn force(backend: KernelBackend) -> BackendGuard {
    assert!(
        backend.is_available(),
        "kernel backend {} is not available on this host",
        backend.name()
    );
    let prev = FORCED.with(|f| f.replace(Some(backend)));
    BackendGuard { prev }
}

/// RAII guard returned by [`force`]; restores the previous per-thread
/// backend override on drop.
pub struct BackendGuard {
    prev: Option<KernelBackend>,
}

impl Drop for BackendGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        FORCED.with(|f| f.set(prev));
    }
}

/// Route one kernel call to the backend's implementation.
///
/// SAFETY: the `Avx2`/`Sse2` arms call `#[target_feature]` functions;
/// this is sound because of the module invariant that those variants only
/// reach the wrappers after runtime detection (see [`KernelBackend`]).
macro_rules! dispatch {
    ($be:expr, $name:ident ( $($arg:expr),* $(,)? )) => {
        match $be {
            // SAFETY: this arm is reached only when runtime detection
            // produced `Avx512` (module invariant — see `KernelBackend`),
            // so the target_feature fn's CPU requirement holds.
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx512 => unsafe { avx512::$name($($arg),*) },
            // SAFETY: this arm is reached only when runtime detection
            // produced `Avx2` (module invariant — see `KernelBackend`),
            // so the target_feature fn's CPU requirement holds.
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx2 => unsafe { avx2::$name($($arg),*) },
            // SAFETY: `Sse2` is only constructed on x86_64, where SSE2 is
            // architecturally guaranteed.
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Sse2 => unsafe { sse2::$name($($arg),*) },
            // SAFETY: `Neon` is only constructed after runtime detection
            // on aarch64, where NEON is architecturally baseline.
            #[cfg(target_arch = "aarch64")]
            KernelBackend::Neon => unsafe { neon::$name($($arg),*) },
            _ => scalar::$name($($arg),*),
        }
    };
}

/// Batch-lane dot sweep: `acc[b] += Σ_k wrow[k] · xt[k·tl + b]` with `k`
/// strictly ascending per lane, `tl = acc.len()`.
pub(crate) fn gemm_lanes(be: KernelBackend, acc: &mut [f32], wrow: &[f32], xt: &[f32]) {
    dispatch!(be, gemm_lanes(acc, wrow, xt));
}

/// Output-major matvec against a transposed weight stage: `y[r] = Σ_k
/// wt[k·r_dim + r] · x[k]`, `k` ascending per element — the exact
/// accumulation sequence of `Matrix::matvec_into`, vectorized across the
/// output dimension.
pub(crate) fn matvec_lanes(be: KernelBackend, y: &mut [f32], wt: &[f32], x: &[f32]) {
    dispatch!(be, matvec_lanes(y, wt, x));
}

/// One sample of the transposed matvec `y[c] = Σ_r w[r·cols + c] · x[r]`
/// with the exact-zero `x[r]` skip — the body of
/// `Matrix::matvec_transpose_into`, vectorized across the output columns.
pub(crate) fn matvec_t_sample(be: KernelBackend, y: &mut [f32], w: &[f32], x: &[f32]) {
    dispatch!(be, matvec_t_sample(y, w, x));
}

/// One sample of `dw += alpha · a ⊗ b`, row-major with the exact-zero
/// delta skip — the body of `Matrix::add_outer`.
pub(crate) fn outer_rows_sample(
    be: KernelBackend,
    dw: &mut [f32],
    a_row: &[f32],
    b_row: &[f32],
    alpha: f32,
) {
    dispatch!(be, outer_rows_sample(dw, a_row, b_row, alpha));
}

/// One sample of `dwt += alpha · b ⊗ a` into a *transposed* gradient
/// stage, vectorized across the `a` dimension (see
/// `Matrix::add_outer_batch` for the bit-identity argument).
pub(crate) fn outer_lanes_sample(
    be: KernelBackend,
    dwt: &mut [f32],
    a_row: &[f32],
    b_row: &[f32],
    alpha: f32,
) {
    dispatch!(be, outer_lanes_sample(dwt, a_row, b_row, alpha));
}

/// `out[s·n + i] += bias[i]` for every sample row `s` — the batched bias
/// add of a dense layer.
pub(crate) fn add_bias_rows(be: KernelBackend, out: &mut [f32], bias: &[f32]) {
    dispatch!(be, add_bias_rows(out, bias));
}

/// `acc[i] += Σ_s rows[s·n + i]`, sample-major — the batched
/// bias-gradient column sums, accumulating each element in sample order.
pub(crate) fn sum_rows(be: KernelBackend, acc: &mut [f32], rows: &[f32]) {
    dispatch!(be, sum_rows(acc, rows));
}

/// In-place ReLU over a flat batch: `x = if x < 0.0 { 0.0 } else { x }`,
/// preserving `-0.0` and NaN exactly like the scalar clamp.
pub(crate) fn relu(be: KernelBackend, xs: &mut [f32]) {
    dispatch!(be, relu(xs));
}

/// Batched ReLU chain-rule mask: `d *= if y > 0.0 { 1.0 } else { 0.0 }`.
pub(crate) fn relu_mask(be: KernelBackend, deltas: &mut [f32], ys: &[f32]) {
    dispatch!(be, relu_mask(deltas, ys));
}

/// Batched tanh chain-rule step: `d *= 1.0 - y·y`.
pub(crate) fn tanh_mask(be: KernelBackend, deltas: &mut [f32], ys: &[f32]) {
    dispatch!(be, tanh_mask(deltas, ys));
}

/// Batched sigmoid chain-rule step: `d *= y · (1.0 - y)`.
pub(crate) fn sigmoid_mask(be: KernelBackend, deltas: &mut [f32], ys: &[f32]) {
    dispatch!(be, sigmoid_mask(deltas, ys));
}

/// Int8 GEMM with exact i32 accumulation: `acc[r·cols + c] = Σ_k
/// x[r·k_dim + k] · w[c·k_dim + k]` where `rows = x.len() / k_dim` and
/// `cols = w.len() / k_dim` (both operands row-major with the shared
/// inner dimension contiguous — `w` rows are output neurons).
///
/// Bit-identity across backends holds by *exactness*, not order: with
/// inputs in `[-127, 127]` and `k_dim ≤ 130_000` (asserted), every
/// partial sum fits an i32 exactly and integer addition is associative,
/// so the vector lanes may reduce horizontally and still match the
/// scalar reference byte-for-byte (see the module docs).
pub(crate) fn gemm_i8_i32(be: KernelBackend, acc: &mut [i32], x: &[i8], w: &[i8], k_dim: usize) {
    assert!(
        k_dim <= 130_000,
        "gemm_i8_i32: k_dim {k_dim} exceeds the exact-i32 headroom (k·127² must stay below i32::MAX)"
    );
    if k_dim == 0 {
        acc.fill(0);
        return;
    }
    assert!(
        x.len().is_multiple_of(k_dim) && w.len().is_multiple_of(k_dim),
        "gemm_i8_i32: operand lengths {}/{} not multiples of k_dim {k_dim}",
        x.len(),
        w.len()
    );
    assert_eq!(
        acc.len(),
        (x.len() / k_dim) * (w.len() / k_dim),
        "gemm_i8_i32: acc length mismatch"
    );
    match be {
        // SAFETY: `Avx512` only reaches the wrappers after runtime
        // detection of avx512f+avx512bw (module invariant — see
        // `KernelBackend`); the VNNI form additionally gates on the
        // detected `avx512_vnni` capability bit.
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx512 => unsafe {
            if capabilities().avx512_vnni {
                i8x86::avx512vnni_gemm_i8_i32(acc, x, w, k_dim)
            } else {
                i8x86::avx512_gemm_i8_i32(acc, x, w, k_dim)
            }
        },
        // SAFETY: `Avx2` only reaches the wrappers after runtime
        // detection (module invariant — see `KernelBackend`), so the
        // target_feature fn's CPU requirement holds; the VEX-VNNI form
        // additionally gates on the detected `avx_vnni` capability bit.
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2 => unsafe {
            if capabilities().avx_vnni {
                i8x86::avxvnni_gemm_i8_i32(acc, x, w, k_dim)
            } else {
                i8x86::avx2_gemm_i8_i32(acc, x, w, k_dim)
            }
        },
        // SAFETY: `Sse2` is only constructed on x86_64, where SSE2 is
        // architecturally guaranteed.
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Sse2 => unsafe { i8x86::sse2_gemm_i8_i32(acc, x, w, k_dim) },
        // SAFETY: `Neon` is only constructed after runtime detection on
        // aarch64, where NEON is architecturally baseline.
        #[cfg(target_arch = "aarch64")]
        KernelBackend::Neon => unsafe { neon::neon_gemm_i8_i32(acc, x, w, k_dim) },
        _ => scalar::gemm_i8_i32(acc, x, w, k_dim),
    }
}

/// Pair-interleaved int8 matvec for small-`k`, wide-`fan_out` layers:
/// `acc[r] = Σ_p x0_p · wt[(p·fan_out + r)·2] + x1_p ·
/// wt[(p·fan_out + r)·2 + 1]`, overwriting `acc`.
///
/// `xpairs[p]` packs the quantized input pair `(x[2p], x[2p+1])` as two
/// little-endian i16 lanes of one i32 (see [`pack_i8_pairs`]); `wt` holds
/// the matching weight pairs interleaved across outputs so the vector
/// backends read eight consecutive outputs per 256-bit load and one
/// `madd` produces eight exact i32 pair-sums. Exactness, not order: each
/// i16·i16 pair-product sum is ≤ 2·127² and the wrapper bounds the pair
/// count, so any accumulation order matches the scalar reference
/// byte-for-byte.
pub(crate) fn gemm_i8p_lanes(
    be: KernelBackend,
    acc: &mut [i32],
    xpairs: &[i32],
    wt: &[i16],
    fan_out: usize,
) {
    assert!(
        xpairs.len() <= 65_000,
        "gemm_i8p_lanes: pair count {} exceeds the exact-i32 headroom",
        xpairs.len()
    );
    assert_eq!(acc.len(), fan_out, "gemm_i8p_lanes: acc length mismatch");
    assert_eq!(
        wt.len(),
        xpairs.len() * fan_out * 2,
        "gemm_i8p_lanes: weight layout mismatch"
    );
    if xpairs.is_empty() || fan_out == 0 {
        acc.fill(0);
        return;
    }
    match be {
        // SAFETY: `Avx512` only reaches the wrappers after runtime
        // detection of avx512f+avx512bw (module invariant — see
        // `KernelBackend`); the VNNI form additionally gates on the
        // detected `avx512_vnni` capability bit.
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx512 => unsafe {
            if capabilities().avx512_vnni {
                i8x86::avx512vnni_gemm_i8p_lanes(acc, xpairs, wt, fan_out)
            } else {
                i8x86::avx512_gemm_i8p_lanes(acc, xpairs, wt, fan_out)
            }
        },
        // SAFETY: `Avx2` only reaches the wrappers after runtime
        // detection (module invariant — see `KernelBackend`), so the
        // target_feature fn's CPU requirement holds; the VEX-VNNI form
        // additionally gates on the detected `avx_vnni` capability bit.
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2 => unsafe {
            if capabilities().avx_vnni {
                i8x86::avxvnni_gemm_i8p_lanes(acc, xpairs, wt, fan_out)
            } else {
                i8x86::avx2_gemm_i8p_lanes(acc, xpairs, wt, fan_out)
            }
        },
        // SAFETY: `Sse2` is only constructed on x86_64, where SSE2 is
        // architecturally guaranteed.
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Sse2 => unsafe { i8x86::sse2_gemm_i8p_lanes(acc, xpairs, wt, fan_out) },
        // SAFETY: `Neon` is only constructed after runtime detection on
        // aarch64, where NEON is architecturally baseline.
        #[cfg(target_arch = "aarch64")]
        KernelBackend::Neon => unsafe { neon::neon_gemm_i8p_lanes(acc, xpairs, wt, fan_out) },
        _ => scalar::gemm_i8p_lanes(acc, xpairs, wt, fan_out),
    }
}

/// Pack a quantized row into the little-endian i16-pair format
/// [`gemm_i8p_lanes`] consumes: `out[p]` holds `(x[2p], x[2p+1])` with an
/// implicit zero for the odd tail. Shared (non-dispatched) by
/// construction — it is pure bit shuffling.
pub(crate) fn pack_i8_pairs(x: &[i8], out: &mut Vec<i32>) {
    out.clear();
    let mut it = x.chunks_exact(2);
    for pair in &mut it {
        // lint:allow(lossy-cast): i16->u16 bit reinterpret packs the sign-extended lane
        let (l0, l1) = (i16::from(pair[0]) as u16, i16::from(pair[1]) as u16);
        out.push(i32::from(l0) | (i32::from(l1) << 16));
    }
    if let Some(&x0) = it.remainder().first() {
        // lint:allow(lossy-cast): i16->u16 bit reinterpret packs the sign-extended lane
        out.push(i32::from(i16::from(x0) as u16));
    }
}

/// Maximum absolute value of `x` (`0.0` when empty). `max` over a set is
/// order-free — every reduction tree yields the same f32 for finite
/// inputs — so the vector backends match the scalar fold byte-for-byte.
pub(crate) fn max_abs_f32(be: KernelBackend, x: &[f32]) -> f32 {
    match be {
        // SAFETY: `Avx512` only reaches the wrappers after runtime
        // detection of avx512f+avx512bw (module invariant — see
        // `KernelBackend`).
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx512 => unsafe { i8x86::avx512_max_abs_f32(x) },
        // SAFETY: `Avx2` only reaches the wrappers after runtime
        // detection (module invariant — see `KernelBackend`).
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2 => unsafe { i8x86::avx2_max_abs_f32(x) },
        // SAFETY: `Sse2` is only constructed on x86_64, where SSE2 is
        // architecturally guaranteed.
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Sse2 => unsafe { i8x86::sse2_max_abs_f32(x) },
        // SAFETY: `Neon` is only constructed after runtime detection on
        // aarch64, where NEON is architecturally baseline.
        #[cfg(target_arch = "aarch64")]
        KernelBackend::Neon => unsafe { neon::neon_max_abs_f32(x) },
        _ => scalar::max_abs_f32(x),
    }
}

/// Elementwise int8 quantization: `dst[i] =
/// clamp(round_half_away(src[i] · inv), -127, 127)` with round-half-away
/// computed as exact truncation plus a fraction compare (`t = trunc(x)`,
/// `r = x - t`, add ±1 when `|r| ≥ 0.5`) — both steps exact in f32 for
/// the `|x| ≲ 127` domain the reciprocal scale guarantees, so every
/// backend produces identical codes without needing a vector `round`.
///
/// Non-finite inputs are the one documented gap: Rust's saturating
/// float→int cast and x86 `cvttps2dq` disagree on NaN/±inf, so the
/// cross-backend byte-identity promise holds for finite `src` only
/// (callers in `quant.rs` derive `inv` from the same row, which keeps
/// finite rows in-domain).
pub(crate) fn quantize_i8(be: KernelBackend, src: &[f32], dst: &mut [i8], inv: f32) {
    assert_eq!(src.len(), dst.len(), "quantize_i8: length mismatch");
    match be {
        // SAFETY: `Avx512` only reaches the wrappers after runtime
        // detection of avx512f+avx512bw (module invariant — see
        // `KernelBackend`).
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx512 => unsafe { i8x86::avx512_quantize_i8(src, dst, inv) },
        // SAFETY: `Avx2` only reaches the wrappers after runtime
        // detection (module invariant — see `KernelBackend`).
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2 => unsafe { i8x86::avx2_quantize_i8(src, dst, inv) },
        // SAFETY: `Sse2` is only constructed on x86_64, where SSE2 is
        // architecturally guaranteed.
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Sse2 => unsafe { i8x86::sse2_quantize_i8(src, dst, inv) },
        // SAFETY: `Neon` is only constructed after runtime detection on
        // aarch64, where NEON is architecturally baseline.
        #[cfg(target_arch = "aarch64")]
        KernelBackend::Neon => unsafe { neon::neon_quantize_i8(src, dst, inv) },
        _ => scalar::quantize_i8(src, dst, inv),
    }
}

/// The portable fallback: the original scalar kernels, moved here
/// verbatim from `matrix.rs`, `mlp.rs`, and `activation.rs`. These are
/// the reference semantics every vector backend must reproduce bitwise.
mod scalar {
    /// `acc[i] += w * xs[i]` over the overlapping prefix.
    ///
    /// Each lane is an independent accumulator, so vectorizing across `i`
    /// never reorders any per-element sum.
    #[inline]
    pub(super) fn axpy(acc: &mut [f32], xs: &[f32], w: f32) {
        for (a, &v) in acc.iter_mut().zip(xs) {
            *a += w * v;
        }
    }

    /// Two fused axpy passes: `acc[i] = (acc[i] + w0·x0[i]) + w1·x1[i]` —
    /// per element, the identical two sequential f32 adds of two [`axpy`]
    /// calls, with half the accumulator load/store traffic.
    #[inline]
    pub(super) fn axpy2(acc: &mut [f32], x0: &[f32], w0: f32, x1: &[f32], w1: f32) {
        for ((a, &v0), &v1) in acc.iter_mut().zip(x0).zip(x1) {
            *a = (*a + w0 * v0) + w1 * v1;
        }
    }

    /// See [`super::gemm_lanes`].
    ///
    /// `#[inline(never)]` is load-bearing here and on the helpers below:
    /// the staging buffers come from a thread-local `RefCell`, where the
    /// optimizer cannot prove disjointness and emits scalar code — and a
    /// plain `#[inline]` boundary is erased by MIR inlining before its
    /// noalias parameter guarantees reach codegen. A real call boundary
    /// keeps them, and the lane loops autovectorize.
    #[inline(never)]
    pub(super) fn gemm_lanes(acc: &mut [f32], wrow: &[f32], xt: &[f32]) {
        let tl = acc.len();
        if tl == 0 {
            return;
        }
        let mut ws = wrow.chunks_exact(2);
        let mut cols = xt.chunks_exact(2 * tl);
        for (wp, cp) in ws.by_ref().zip(cols.by_ref()) {
            let (c0, c1) = cp.split_at(tl);
            axpy2(acc, c0, wp[0], c1, wp[1]);
        }
        for (&w, col) in ws.remainder().iter().zip(cols.remainder().chunks_exact(tl)) {
            axpy(acc, col, w);
        }
    }

    /// See [`super::matvec_lanes`].
    #[inline(never)]
    pub(super) fn matvec_lanes(y: &mut [f32], wt: &[f32], x: &[f32]) {
        let r_dim = y.len();
        if r_dim == 0 {
            return;
        }
        y.fill(0.0);
        let mut xs = x.chunks_exact(2);
        let mut ws = wt.chunks_exact(2 * r_dim);
        for (xp, wp) in xs.by_ref().zip(ws.by_ref()) {
            let (w0, w1) = wp.split_at(r_dim);
            axpy2(y, w0, xp[0], w1, xp[1]);
        }
        for (&xv, wrow) in xs
            .remainder()
            .iter()
            .zip(ws.remainder().chunks_exact(r_dim))
        {
            axpy(y, wrow, xv);
        }
    }

    /// See [`super::matvec_t_sample`] — the loop body of
    /// `Matrix::matvec_transpose_into`, per sample.
    #[inline(never)]
    pub(super) fn matvec_t_sample(y: &mut [f32], w: &[f32], x: &[f32]) {
        y.fill(0.0);
        let cols = y.len();
        if cols == 0 {
            return;
        }
        for (&xv, row) in x.iter().zip(w.chunks_exact(cols)) {
            // lint:allow(float-eq): exact-zero sparsity skip; backprop deltas are assigned 0.0 exactly, and a false negative only costs speed
            if xv == 0.0 {
                continue;
            }
            for (yc, wv) in y.iter_mut().zip(row) {
                *yc += wv * xv;
            }
        }
    }

    /// See [`super::outer_rows_sample`].
    #[inline(never)]
    pub(super) fn outer_rows_sample(dw: &mut [f32], a_row: &[f32], b_row: &[f32], alpha: f32) {
        let cols = b_row.len();
        if cols == 0 {
            return;
        }
        for (&av, row) in a_row.iter().zip(dw.chunks_exact_mut(cols)) {
            // lint:allow(float-eq): exact-zero sparsity skip; ReLU masks and single-action TD errors assign 0.0 exactly, and a false negative only costs speed
            if av == 0.0 {
                continue;
            }
            axpy(row, b_row, alpha * av);
        }
    }

    /// See [`super::outer_lanes_sample`]. Bit-identity of the transposed
    /// store layout and the moved sparsity skip: element `(r, c)`
    /// receives the identical f32 add sequence as the row-major form —
    /// one contribution per sample in sample order; where it is *stored*
    /// during accumulation does not change rounding, and skipped/added
    /// `±0.0` products of finite operands satisfy `x + ±0.0 == x` bitwise
    /// for every `x` an accumulation starting at `+0.0` can reach.
    #[inline(never)]
    pub(super) fn outer_lanes_sample(dwt: &mut [f32], a_row: &[f32], b_row: &[f32], alpha: f32) {
        let rows = a_row.len();
        if rows == 0 {
            return;
        }
        for (&bv, drow) in b_row.iter().zip(dwt.chunks_exact_mut(rows)) {
            // lint:allow(float-eq): exact-zero sparsity skip, proven bit-identical above
            if bv == 0.0 {
                continue;
            }
            axpy(drow, a_row, alpha * bv);
        }
    }

    /// See [`super::add_bias_rows`].
    #[inline(never)]
    pub(super) fn add_bias_rows(out: &mut [f32], bias: &[f32]) {
        if bias.is_empty() {
            return;
        }
        for row in out.chunks_exact_mut(bias.len()) {
            for (o, &bv) in row.iter_mut().zip(bias) {
                *o += bv;
            }
        }
    }

    /// See [`super::sum_rows`].
    #[inline(never)]
    pub(super) fn sum_rows(acc: &mut [f32], rows: &[f32]) {
        if acc.is_empty() {
            return;
        }
        for row in rows.chunks_exact(acc.len()) {
            for (g, &d) in acc.iter_mut().zip(row) {
                *g += d;
            }
        }
    }

    /// See [`super::relu`] — the `Activation::Relu` clamp over a flat
    /// batch.
    #[inline(never)]
    pub(super) fn relu(xs: &mut [f32]) {
        for x in xs {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
    }

    /// See [`super::relu_mask`]. The select-then-multiply form compiles
    /// branchless, and `d * 0.0 = ±0.0` keeps `d`'s sign exactly like
    /// the per-sample chain rule.
    #[inline(never)]
    pub(super) fn relu_mask(deltas: &mut [f32], ys: &[f32]) {
        for (d, &y) in deltas.iter_mut().zip(ys) {
            *d *= if y > 0.0 { 1.0 } else { 0.0 };
        }
    }

    /// See [`super::tanh_mask`].
    #[inline(never)]
    pub(super) fn tanh_mask(deltas: &mut [f32], ys: &[f32]) {
        for (d, &y) in deltas.iter_mut().zip(ys) {
            *d *= 1.0 - y * y;
        }
    }

    /// See [`super::sigmoid_mask`].
    #[inline(never)]
    pub(super) fn sigmoid_mask(deltas: &mut [f32], ys: &[f32]) {
        for (d, &y) in deltas.iter_mut().zip(ys) {
            *d *= y * (1.0 - y);
        }
    }

    /// See [`super::gemm_i8_i32`] — the exact-i32 reference. Widening
    /// through `i32::from` (infallible), no `as` casts.
    #[inline(never)]
    pub(super) fn gemm_i8_i32(acc: &mut [i32], x: &[i8], w: &[i8], k_dim: usize) {
        if k_dim == 0 {
            acc.fill(0);
            return;
        }
        let mut out = acc.iter_mut();
        for xrow in x.chunks_exact(k_dim) {
            for wrow in w.chunks_exact(k_dim) {
                let mut s = 0i32;
                for (&xv, &wv) in xrow.iter().zip(wrow) {
                    s += i32::from(xv) * i32::from(wv);
                }
                if let Some(slot) = out.next() {
                    *slot = s;
                }
            }
        }
    }

    /// See [`super::gemm_i8p_lanes`] — the exact-i32 reference over the
    /// pair-interleaved layout. Unpacks each packed i32 back into its two
    /// i16 lanes with infallible conversions.
    #[inline(never)]
    pub(super) fn gemm_i8p_lanes(acc: &mut [i32], xpairs: &[i32], wt: &[i16], fan_out: usize) {
        acc.fill(0);
        for (p, &xp) in xpairs.iter().enumerate() {
            // lint:allow(lossy-cast): exact lane unpack of the 16-bit halves
            let x0 = i32::from((xp & 0xFFFF) as u16 as i16);
            // lint:allow(lossy-cast): exact lane unpack of the 16-bit halves
            let x1 = i32::from((xp >> 16) as u16 as i16);
            let row = &wt[p * fan_out * 2..(p + 1) * fan_out * 2];
            for (slot, wp) in acc.iter_mut().zip(row.chunks_exact(2)) {
                *slot += x0 * i32::from(wp[0]) + x1 * i32::from(wp[1]);
            }
        }
    }

    /// See [`super::max_abs_f32`].
    #[inline(never)]
    pub(super) fn max_abs_f32(x: &[f32]) -> f32 {
        let mut m = 0.0f32;
        for &v in x {
            let a = v.abs();
            if a > m {
                m = a;
            }
        }
        m
    }

    /// One element of [`super::quantize_i8`]: truncate, compare the exact
    /// fraction against ±0.5, clamp. Shared with the vector remainder
    /// loops so tails are identical by construction.
    #[inline]
    pub(super) fn quantize_one_i8(v: f32, inv: f32) -> i8 {
        let x = v * inv;
        // lint:allow(lossy-cast): saturating truncation is the documented rounding primitive
        let t = x as i32;
        let r = x - t as f32;
        let q = t + i32::from(r >= 0.5) - i32::from(r <= -0.5);
        // lint:allow(lossy-cast): clamped to the i8 range on the previous step
        q.clamp(-127, 127) as i8
    }

    /// See [`super::quantize_i8`].
    #[inline(never)]
    pub(super) fn quantize_i8(src: &[f32], dst: &mut [i8], inv: f32) {
        for (d, &v) in dst.iter_mut().zip(src) {
            *d = quantize_one_i8(v, inv);
        }
    }
}

/// AVX `_mm256_cmp_ps` takes its predicate as a const generic, unlike the
/// fixed-predicate SSE compare intrinsics; these wrappers give both ISAs
/// the same two-argument shape for the kernel-set macro. `_OQ` (ordered,
/// quiet) predicates match scalar `<` / `>`: false on NaN.
#[cfg(target_arch = "x86_64")]
mod cmp256 {
    use core::arch::x86_64::*;

    // SAFETY: target_feature-only unsafety — called exclusively from the
    // avx2 kernel set, which itself runs only after runtime detection.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gt(a: __m256, b: __m256) -> __m256 {
        _mm256_cmp_ps::<_CMP_GT_OQ>(a, b)
    }

    // SAFETY: target_feature-only unsafety — called exclusively from the
    // avx2 kernel set, which itself runs only after runtime detection.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lt(a: __m256, b: __m256) -> __m256 {
        _mm256_cmp_ps::<_CMP_LT_OQ>(a, b)
    }
}

/// AVX-512 compares produce opmask registers (`__mmask16`) rather than
/// vector masks, and AVX-512F has no float bitwise ops (`_mm512_and_ps`
/// is AVX-512DQ); these shims re-express both in the all-ones-lane vector
/// shape the kernel-set macro expects, so the 16-wide instantiation reads
/// identically to the 8- and 4-wide ones. `maskz_set1(-1)` expands an
/// opmask to the exact all-ones/all-zeros lanes a vector compare would
/// produce, and the bitwise ops round-trip through `si512` — both are
/// pure bit moves, so the established `andnot(x < 0, x)` /
/// `and(mask, 1.0)` identities keep their scalar semantics unchanged.
/// `_OQ` predicates as in [`cmp256`]: false on NaN, matching scalar
/// `<` / `>`.
#[cfg(target_arch = "x86_64")]
mod m512 {
    use core::arch::x86_64::*;

    // SAFETY: target_feature-only unsafety — called exclusively from the
    // avx512 kernel set, which itself runs only after runtime detection.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn mask_lanes(m: __mmask16) -> __m512 {
        _mm512_castsi512_ps(_mm512_maskz_set1_epi32(m, -1))
    }

    // SAFETY: target_feature-only unsafety — called exclusively from the
    // avx512 kernel set, which itself runs only after runtime detection.
    #[inline]
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn gt(a: __m512, b: __m512) -> __m512 {
        mask_lanes(_mm512_cmp_ps_mask::<_CMP_GT_OQ>(a, b))
    }

    // SAFETY: target_feature-only unsafety — called exclusively from the
    // avx512 kernel set, which itself runs only after runtime detection.
    #[inline]
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn lt(a: __m512, b: __m512) -> __m512 {
        mask_lanes(_mm512_cmp_ps_mask::<_CMP_LT_OQ>(a, b))
    }

    // SAFETY: target_feature-only unsafety — called exclusively from the
    // avx512 kernel set, which itself runs only after runtime detection.
    #[inline]
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn and(a: __m512, b: __m512) -> __m512 {
        _mm512_castsi512_ps(_mm512_and_si512(
            _mm512_castps_si512(a),
            _mm512_castps_si512(b),
        ))
    }

    /// `(!a) & b`, matching `_mm_andnot_ps` / `_mm256_andnot_ps` operand
    /// order.
    // SAFETY: target_feature-only unsafety — called exclusively from the
    // avx512 kernel set, which itself runs only after runtime detection.
    #[inline]
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn andnot(a: __m512, b: __m512) -> __m512 {
        _mm512_castsi512_ps(_mm512_andnot_si512(
            _mm512_castps_si512(a),
            _mm512_castps_si512(b),
        ))
    }
}

/// One vector backend. Each kernel mirrors its scalar counterpart
/// statement for statement: the vector body processes `$w`-wide groups of
/// *independent lanes* with non-fused `$mul` + `$add`, and the remainder
/// falls through to the identical scalar expressions, so results are
/// byte-identical to `mod scalar` (see the module docs for the full
/// argument).
///
/// SAFETY: every function is `#[target_feature(enable = $feature)]` and
/// only reachable through `dispatch!`, which routes to this module solely
/// for backend values that passed runtime detection. Raw pointer
/// arithmetic stays within `i + $w <= len` bounds established on the
/// zipped slice prefix.
#[cfg(target_arch = "x86_64")]
macro_rules! x86_kernel_set {
    ($modname:ident, $feature:literal, $w:literal,
     $loadu:ident, $storeu:ident, $set1:ident, $add:ident, $mul:ident, $sub:ident,
     $and:path, $andnot:path, $cmpgt:path, $cmplt:path) => {
        mod $modname {
            #[allow(unused_imports)]
            use core::arch::x86_64::*;

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn axpy(acc: &mut [f32], xs: &[f32], w: f32) {
                let n = acc.len().min(xs.len());
                let wv = $set1(w);
                let mut i = 0usize;
                while i + $w <= n {
                    let x = $loadu(xs.as_ptr().add(i));
                    let a = $loadu(acc.as_ptr().add(i));
                    $storeu(acc.as_mut_ptr().add(i), $add(a, $mul(wv, x)));
                    i += $w;
                }
                for (a, &v) in acc[i..n].iter_mut().zip(&xs[i..n]) {
                    *a += w * v;
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn axpy2(acc: &mut [f32], x0: &[f32], w0: f32, x1: &[f32], w1: f32) {
                let n = acc.len().min(x0.len()).min(x1.len());
                let w0v = $set1(w0);
                let w1v = $set1(w1);
                let mut i = 0usize;
                while i + $w <= n {
                    let a = $loadu(acc.as_ptr().add(i));
                    let v0 = $loadu(x0.as_ptr().add(i));
                    let v1 = $loadu(x1.as_ptr().add(i));
                    $storeu(
                        acc.as_mut_ptr().add(i),
                        $add($add(a, $mul(w0v, v0)), $mul(w1v, v1)),
                    );
                    i += $w;
                }
                for ((a, &v0), &v1) in acc[i..n].iter_mut().zip(&x0[i..n]).zip(&x1[i..n]) {
                    *a = (*a + w0 * v0) + w1 * v1;
                }
            }

            /// `y[i] += ws[i] · x` — weight vector times splatted scalar;
            /// operand order matches `matvec_transpose_into`'s
            /// `*yc += wv * xv`.
            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn axpy_wx(y: &mut [f32], ws: &[f32], x: f32) {
                let n = y.len().min(ws.len());
                let xv = $set1(x);
                let mut i = 0usize;
                while i + $w <= n {
                    let wv = $loadu(ws.as_ptr().add(i));
                    let a = $loadu(y.as_ptr().add(i));
                    $storeu(y.as_mut_ptr().add(i), $add(a, $mul(wv, xv)));
                    i += $w;
                }
                for (a, &wv) in y[i..n].iter_mut().zip(&ws[i..n]) {
                    *a += wv * x;
                }
            }

            /// `acc[i] += xs[i]` over the overlapping prefix.
            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn add_assign(acc: &mut [f32], xs: &[f32]) {
                let n = acc.len().min(xs.len());
                let mut i = 0usize;
                while i + $w <= n {
                    let a = $loadu(acc.as_ptr().add(i));
                    let x = $loadu(xs.as_ptr().add(i));
                    $storeu(acc.as_mut_ptr().add(i), $add(a, x));
                    i += $w;
                }
                for (a, &v) in acc[i..n].iter_mut().zip(&xs[i..n]) {
                    *a += v;
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn gemm_lanes(acc: &mut [f32], wrow: &[f32], xt: &[f32]) {
                let tl = acc.len();
                if tl == 0 {
                    return;
                }
                let mut ws = wrow.chunks_exact(2);
                let mut cols = xt.chunks_exact(2 * tl);
                for (wp, cp) in ws.by_ref().zip(cols.by_ref()) {
                    let (c0, c1) = cp.split_at(tl);
                    axpy2(acc, c0, wp[0], c1, wp[1]);
                }
                for (&w, col) in ws.remainder().iter().zip(cols.remainder().chunks_exact(tl)) {
                    axpy(acc, col, w);
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn matvec_lanes(y: &mut [f32], wt: &[f32], x: &[f32]) {
                let r_dim = y.len();
                if r_dim == 0 {
                    return;
                }
                y.fill(0.0);
                let mut xs = x.chunks_exact(2);
                let mut ws = wt.chunks_exact(2 * r_dim);
                for (xp, wp) in xs.by_ref().zip(ws.by_ref()) {
                    let (w0, w1) = wp.split_at(r_dim);
                    axpy2(y, w0, xp[0], w1, xp[1]);
                }
                for (&xv, wrow) in xs
                    .remainder()
                    .iter()
                    .zip(ws.remainder().chunks_exact(r_dim))
                {
                    axpy(y, wrow, xv);
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn matvec_t_sample(y: &mut [f32], w: &[f32], x: &[f32]) {
                y.fill(0.0);
                let cols = y.len();
                if cols == 0 {
                    return;
                }
                for (&xv, row) in x.iter().zip(w.chunks_exact(cols)) {
                    // lint:allow(float-eq): exact-zero sparsity skip, identical to the scalar kernel
                    if xv == 0.0 {
                        continue;
                    }
                    axpy_wx(y, row, xv);
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn outer_rows_sample(
                dw: &mut [f32],
                a_row: &[f32],
                b_row: &[f32],
                alpha: f32,
            ) {
                let cols = b_row.len();
                if cols == 0 {
                    return;
                }
                for (&av, row) in a_row.iter().zip(dw.chunks_exact_mut(cols)) {
                    // lint:allow(float-eq): exact-zero sparsity skip, identical to the scalar kernel
                    if av == 0.0 {
                        continue;
                    }
                    axpy(row, b_row, alpha * av);
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn outer_lanes_sample(
                dwt: &mut [f32],
                a_row: &[f32],
                b_row: &[f32],
                alpha: f32,
            ) {
                let rows = a_row.len();
                if rows == 0 {
                    return;
                }
                for (&bv, drow) in b_row.iter().zip(dwt.chunks_exact_mut(rows)) {
                    // lint:allow(float-eq): exact-zero sparsity skip, identical to the scalar kernel
                    if bv == 0.0 {
                        continue;
                    }
                    axpy(drow, a_row, alpha * bv);
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn add_bias_rows(out: &mut [f32], bias: &[f32]) {
                if bias.is_empty() {
                    return;
                }
                for row in out.chunks_exact_mut(bias.len()) {
                    add_assign(row, bias);
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn sum_rows(acc: &mut [f32], rows: &[f32]) {
                if acc.is_empty() {
                    return;
                }
                for row in rows.chunks_exact(acc.len()) {
                    add_assign(acc, row);
                }
            }

            /// `andnot(x < 0, x)` zeroes exactly the lanes the scalar
            /// branch zeroes: `-0.0` is not `< 0.0` (kept, like scalar)
            /// and NaN compares false (kept bit-exactly, unlike `max`).
            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn relu(xs: &mut [f32]) {
                let n = xs.len();
                let zero = $set1(0.0);
                let mut i = 0usize;
                while i + $w <= n {
                    let x = $loadu(xs.as_ptr().add(i));
                    let neg = $cmplt(x, zero);
                    $storeu(xs.as_mut_ptr().add(i), $andnot(neg, x));
                    i += $w;
                }
                for x in &mut xs[i..] {
                    if *x < 0.0 {
                        *x = 0.0;
                    }
                }
            }

            /// Multiply by an `and`-selected `{0.0, 1.0}` mask — the same
            /// `d * 0.0` / `d * 1.0` the scalar branchless select
            /// performs, so `±0.0` signs survive identically.
            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn relu_mask(deltas: &mut [f32], ys: &[f32]) {
                let n = deltas.len().min(ys.len());
                let zero = $set1(0.0);
                let one = $set1(1.0);
                let mut i = 0usize;
                while i + $w <= n {
                    let d = $loadu(deltas.as_ptr().add(i));
                    let y = $loadu(ys.as_ptr().add(i));
                    let m = $and($cmpgt(y, zero), one);
                    $storeu(deltas.as_mut_ptr().add(i), $mul(d, m));
                    i += $w;
                }
                for (d, &y) in deltas[i..n].iter_mut().zip(&ys[i..n]) {
                    *d *= if y > 0.0 { 1.0 } else { 0.0 };
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn tanh_mask(deltas: &mut [f32], ys: &[f32]) {
                let n = deltas.len().min(ys.len());
                let one = $set1(1.0);
                let mut i = 0usize;
                while i + $w <= n {
                    let d = $loadu(deltas.as_ptr().add(i));
                    let y = $loadu(ys.as_ptr().add(i));
                    $storeu(deltas.as_mut_ptr().add(i), $mul(d, $sub(one, $mul(y, y))));
                    i += $w;
                }
                for (d, &y) in deltas[i..n].iter_mut().zip(&ys[i..n]) {
                    *d *= 1.0 - y * y;
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn sigmoid_mask(deltas: &mut [f32], ys: &[f32]) {
                let n = deltas.len().min(ys.len());
                let one = $set1(1.0);
                let mut i = 0usize;
                while i + $w <= n {
                    let d = $loadu(deltas.as_ptr().add(i));
                    let y = $loadu(ys.as_ptr().add(i));
                    $storeu(deltas.as_mut_ptr().add(i), $mul(d, $mul(y, $sub(one, y))));
                    i += $w;
                }
                for (d, &y) in deltas[i..n].iter_mut().zip(&ys[i..n]) {
                    *d *= y * (1.0 - y);
                }
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
x86_kernel_set!(
    avx512,
    "avx512f",
    16,
    _mm512_loadu_ps,
    _mm512_storeu_ps,
    _mm512_set1_ps,
    _mm512_add_ps,
    _mm512_mul_ps,
    _mm512_sub_ps,
    super::m512::and,
    super::m512::andnot,
    super::m512::gt,
    super::m512::lt
);

#[cfg(target_arch = "x86_64")]
x86_kernel_set!(
    avx2,
    "avx2",
    8,
    _mm256_loadu_ps,
    _mm256_storeu_ps,
    _mm256_set1_ps,
    _mm256_add_ps,
    _mm256_mul_ps,
    _mm256_sub_ps,
    _mm256_and_ps,
    _mm256_andnot_ps,
    super::cmp256::gt,
    super::cmp256::lt
);

#[cfg(target_arch = "x86_64")]
x86_kernel_set!(
    sse2,
    "sse2",
    4,
    _mm_loadu_ps,
    _mm_storeu_ps,
    _mm_set1_ps,
    _mm_add_ps,
    _mm_mul_ps,
    _mm_sub_ps,
    _mm_and_ps,
    _mm_andnot_ps,
    _mm_cmpgt_ps,
    _mm_cmplt_ps
);

/// Shared scalar remainder for the pair-interleaved kernels: the
/// outputs past the last full vector, computed with the reference
/// expressions so tails match `mod scalar` by construction.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
fn lanes_tail_i8p(tail: &mut [i32], xpairs: &[i32], wt: &[i16], fan_out: usize, base: usize) {
    for (j, slot) in tail.iter_mut().enumerate() {
        let r = base + j;
        let mut s = 0i32;
        for (p, &xp) in xpairs.iter().enumerate() {
            // lint:allow(lossy-cast): exact lane unpack of the 16-bit halves
            let x0 = i32::from((xp & 0xFFFF) as u16 as i16);
            // lint:allow(lossy-cast): exact lane unpack of the 16-bit halves
            let x1 = i32::from((xp >> 16) as u16 as i16);
            let w0 = i32::from(wt[(p * fan_out + r) * 2]);
            let w1 = i32::from(wt[(p * fan_out + r) * 2 + 1]);
            s += x0 * w0 + x1 * w1;
        }
        *slot = s;
    }
}

/// Vector int8 dot-product kernels. Unlike the float kernel sets these
/// *do* reduce horizontally — exact i32 arithmetic makes any summation
/// order bit-identical (see the module docs), so the layout is chosen for
/// speed, not to mirror the scalar loop.
///
/// The AVX2 lane follows the `maddubs`-style two-step shape without the
/// u8×i8 saturation hazard: sign-extend 16 i8 to 16 i16
/// (`vpmovsxbw`), then `vpmaddwd` pairs into 8 exact i32 partials —
/// exact because i8-range products are ≤ 16129 and a pair sum ≤ 32258
/// can't overflow the *i32* madd output (i16 saturation inside madd only
/// occurs for both inputs = -32768, unreachable from i8). The AVX-512
/// lane doubles that to 32 bytes per `madd`; on VNNI hosts the dot
/// collapses further into `vpdpbusd`/`vpdpwssd` forms (see the module
/// docs for the offset-corrected exactness argument).
#[cfg(target_arch = "x86_64")]
mod i8x86 {
    use core::arch::x86_64::*;

    /// Exact i32 dot product of two i8 slices (overlapping prefix).
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8_i32` dispatcher after runtime detection of AVX2; pointer
    // offsets stay below the `i + 16 <= n` slice bound.
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_dot_i8(x: &[i8], w: &[i8]) -> i32 {
        let n = x.len().min(w.len());
        let mut accv = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 16 <= n {
            let xv = _mm_loadu_si128(x.as_ptr().add(i).cast());
            let wv = _mm_loadu_si128(w.as_ptr().add(i).cast());
            let xw = _mm256_cvtepi8_epi16(xv);
            let ww = _mm256_cvtepi8_epi16(wv);
            accv = _mm256_add_epi32(accv, _mm256_madd_epi16(xw, ww));
            i += 16;
        }
        let lo = _mm256_castsi256_si128(accv);
        let hi = _mm256_extracti128_si256::<1>(accv);
        let s4 = _mm_add_epi32(lo, hi);
        let s2 = _mm_add_epi32(s4, _mm_unpackhi_epi64(s4, s4));
        let s1 = _mm_add_epi32(s2, _mm_shuffle_epi32::<1>(s2));
        let mut sum = _mm_cvtsi128_si32(s1);
        for (&xv, &wv) in x[i..n].iter().zip(&w[i..n]) {
            sum += i32::from(xv) * i32::from(wv);
        }
        sum
    }

    /// Exact i32 dot product, SSE2 lane: sign-extension via the
    /// unpack-with-self + arithmetic-shift idiom (no `pmovsx` before
    /// SSE4.1), then the same exact `pmaddwd` reduction.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8_i32` dispatcher (SSE2 is baseline on x86-64); pointer
    // offsets stay below the `i + 16 <= n` slice bound.
    #[target_feature(enable = "sse2")]
    unsafe fn sse2_dot_i8(x: &[i8], w: &[i8]) -> i32 {
        let n = x.len().min(w.len());
        let mut accv = _mm_setzero_si128();
        let mut i = 0usize;
        while i + 16 <= n {
            let xv = _mm_loadu_si128(x.as_ptr().add(i).cast());
            let wv = _mm_loadu_si128(w.as_ptr().add(i).cast());
            let xlo = _mm_srai_epi16::<8>(_mm_unpacklo_epi8(xv, xv));
            let xhi = _mm_srai_epi16::<8>(_mm_unpackhi_epi8(xv, xv));
            let wlo = _mm_srai_epi16::<8>(_mm_unpacklo_epi8(wv, wv));
            let whi = _mm_srai_epi16::<8>(_mm_unpackhi_epi8(wv, wv));
            accv = _mm_add_epi32(accv, _mm_madd_epi16(xlo, wlo));
            accv = _mm_add_epi32(accv, _mm_madd_epi16(xhi, whi));
            i += 16;
        }
        let s2 = _mm_add_epi32(accv, _mm_unpackhi_epi64(accv, accv));
        let s1 = _mm_add_epi32(s2, _mm_shuffle_epi32::<1>(s2));
        let mut sum = _mm_cvtsi128_si32(s1);
        for (&xv, &wv) in x[i..n].iter().zip(&w[i..n]) {
            sum += i32::from(xv) * i32::from(wv);
        }
        sum
    }

    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8_i32` dispatcher after runtime detection of AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn avx2_gemm_i8_i32(acc: &mut [i32], x: &[i8], w: &[i8], k_dim: usize) {
        if k_dim == 0 {
            acc.fill(0);
            return;
        }
        let mut out = acc.iter_mut();
        for xrow in x.chunks_exact(k_dim) {
            for wrow in w.chunks_exact(k_dim) {
                let s = avx2_dot_i8(xrow, wrow);
                if let Some(slot) = out.next() {
                    *slot = s;
                }
            }
        }
    }

    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8_i32` dispatcher (SSE2 is baseline on x86-64).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn sse2_gemm_i8_i32(acc: &mut [i32], x: &[i8], w: &[i8], k_dim: usize) {
        if k_dim == 0 {
            acc.fill(0);
            return;
        }
        let mut out = acc.iter_mut();
        for xrow in x.chunks_exact(k_dim) {
            for wrow in w.chunks_exact(k_dim) {
                let s = sse2_dot_i8(xrow, wrow);
                if let Some(slot) = out.next() {
                    *slot = s;
                }
            }
        }
    }

    /// Exact i32 dot product, AVX-512BW lane: sign-extend 32 i8 to one
    /// zmm of i16 (`vpmovsxbw`), `vpmaddwd` into 16 exact i32 partials,
    /// lane-reduce — the AVX2 shape at twice the width.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8_i32` dispatcher after runtime detection of
    // avx512f+avx512bw; pointer offsets stay below the `i + 32 <= n`
    // slice bound.
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn avx512_dot_i8(x: &[i8], w: &[i8]) -> i32 {
        let n = x.len().min(w.len());
        let mut accv = _mm512_setzero_si512();
        let mut i = 0usize;
        while i + 32 <= n {
            let xv = _mm256_loadu_si256(x.as_ptr().add(i).cast());
            let wv = _mm256_loadu_si256(w.as_ptr().add(i).cast());
            let xw = _mm512_cvtepi8_epi16(xv);
            let ww = _mm512_cvtepi8_epi16(wv);
            accv = _mm512_add_epi32(accv, _mm512_madd_epi16(xw, ww));
            i += 32;
        }
        let mut sum = _mm512_reduce_add_epi32(accv);
        for (&xv, &wv) in x[i..n].iter().zip(&w[i..n]) {
            sum += i32::from(xv) * i32::from(wv);
        }
        sum
    }

    /// Exact i32 dot product, AVX-512 VNNI lane: one `vpdpbusd` per 64
    /// bytes, signed-exact via the offset trick. `vpdpbusd` multiplies
    /// *unsigned* bytes by signed bytes, so the x operand is biased by
    /// +128 (a sign-bit XOR): the accumulator then holds `Σ (x+128)·w =
    /// dot + 128·Σw`, and `Σw` over the same prefix is recovered from a
    /// `vpsadbw` running sum of the biased w bytes (`Σ(w+128) − 128·len`,
    /// exact in u64). The i32 accumulator lanes may wrap, but every step
    /// is arithmetic mod 2³² and the true dot is within i32 by the
    /// wrapper's `k ≤ 130_000` bound, so the corrected difference is the
    /// exact dot — see the module docs.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8_i32` dispatcher after runtime detection of
    // avx512f+avx512bw and the `avx512_vnni` capability bit; pointer
    // offsets stay below the `i + 64 <= n` slice bound.
    #[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
    unsafe fn avx512vnni_dot_i8(x: &[i8], w: &[i8]) -> i32 {
        let n = x.len().min(w.len());
        let sign = _mm512_set1_epi8(-128i8);
        let zero = _mm512_setzero_si512();
        let mut dp = _mm512_setzero_si512();
        let mut wu_acc = _mm512_setzero_si512();
        let mut chunks = 0i64;
        let mut i = 0usize;
        while i + 64 <= n {
            let xv = _mm512_loadu_si512(x.as_ptr().add(i).cast());
            let wv = _mm512_loadu_si512(w.as_ptr().add(i).cast());
            let xu = _mm512_xor_si512(xv, sign);
            dp = _mm512_dpbusd_epi32(dp, xu, wv);
            let wu = _mm512_xor_si512(wv, sign);
            wu_acc = _mm512_add_epi64(wu_acc, _mm512_sad_epu8(wu, zero));
            chunks += 1;
            i += 64;
        }
        let dpsum = _mm512_reduce_add_epi32(dp);
        // Σ(w+128) over the vector prefix, exact in i64; the correction
        // `128·Σw` is then applied mod 2³² (the truncation below is the
        // intended modular step, not a range assumption).
        let wu_total = _mm512_reduce_add_epi64(wu_acc);
        let w_signed_sum = wu_total - 128 * 64 * chunks;
        // lint:allow(lossy-cast): intentional mod-2^32 truncation of the correction term
        let corr = (128i64 * w_signed_sum) as i32;
        let mut sum = dpsum.wrapping_sub(corr);
        for (&xv, &wv) in x[i..n].iter().zip(&w[i..n]) {
            sum += i32::from(xv) * i32::from(wv);
        }
        sum
    }

    /// Exact i32 dot product, AVX-VNNI (VEX) lane: the AVX2 shape with
    /// `vpdpwssd` fusing the `madd`+`add` pair into one instruction —
    /// identical exact i32 lane sums, one fewer op per 16 bytes.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8_i32` dispatcher after runtime detection of AVX2 and the
    // `avx_vnni` capability bit; pointer offsets stay below the
    // `i + 16 <= n` slice bound.
    #[target_feature(enable = "avx2,avxvnni")]
    unsafe fn avxvnni_dot_i8(x: &[i8], w: &[i8]) -> i32 {
        let n = x.len().min(w.len());
        let mut accv = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 16 <= n {
            let xv = _mm_loadu_si128(x.as_ptr().add(i).cast());
            let wv = _mm_loadu_si128(w.as_ptr().add(i).cast());
            let xw = _mm256_cvtepi8_epi16(xv);
            let ww = _mm256_cvtepi8_epi16(wv);
            accv = _mm256_dpwssd_avx_epi32(accv, xw, ww);
            i += 16;
        }
        let lo = _mm256_castsi256_si128(accv);
        let hi = _mm256_extracti128_si256::<1>(accv);
        let s4 = _mm_add_epi32(lo, hi);
        let s2 = _mm_add_epi32(s4, _mm_unpackhi_epi64(s4, s4));
        let s1 = _mm_add_epi32(s2, _mm_shuffle_epi32::<1>(s2));
        let mut sum = _mm_cvtsi128_si32(s1);
        for (&xv, &wv) in x[i..n].iter().zip(&w[i..n]) {
            sum += i32::from(xv) * i32::from(wv);
        }
        sum
    }

    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8_i32` dispatcher after runtime detection of
    // avx512f+avx512bw.
    #[target_feature(enable = "avx512f,avx512bw")]
    pub(super) unsafe fn avx512_gemm_i8_i32(acc: &mut [i32], x: &[i8], w: &[i8], k_dim: usize) {
        if k_dim == 0 {
            acc.fill(0);
            return;
        }
        let mut out = acc.iter_mut();
        for xrow in x.chunks_exact(k_dim) {
            for wrow in w.chunks_exact(k_dim) {
                let s = avx512_dot_i8(xrow, wrow);
                if let Some(slot) = out.next() {
                    *slot = s;
                }
            }
        }
    }

    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8_i32` dispatcher after runtime detection of
    // avx512f+avx512bw and the `avx512_vnni` capability bit.
    #[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
    pub(super) unsafe fn avx512vnni_gemm_i8_i32(acc: &mut [i32], x: &[i8], w: &[i8], k_dim: usize) {
        if k_dim == 0 {
            acc.fill(0);
            return;
        }
        let mut out = acc.iter_mut();
        for xrow in x.chunks_exact(k_dim) {
            for wrow in w.chunks_exact(k_dim) {
                let s = avx512vnni_dot_i8(xrow, wrow);
                if let Some(slot) = out.next() {
                    *slot = s;
                }
            }
        }
    }

    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8_i32` dispatcher after runtime detection of AVX2 and the
    // `avx_vnni` capability bit.
    #[target_feature(enable = "avx2,avxvnni")]
    pub(super) unsafe fn avxvnni_gemm_i8_i32(acc: &mut [i32], x: &[i8], w: &[i8], k_dim: usize) {
        if k_dim == 0 {
            acc.fill(0);
            return;
        }
        let mut out = acc.iter_mut();
        for xrow in x.chunks_exact(k_dim) {
            for wrow in w.chunks_exact(k_dim) {
                let s = avxvnni_dot_i8(xrow, wrow);
                if let Some(slot) = out.next() {
                    *slot = s;
                }
            }
        }
    }

    /// Pair-interleaved matvec, AVX2 lane: broadcast one packed input
    /// pair, `pmaddwd` it against eight consecutive outputs' weight pairs
    /// per load. Each `madd` lane is one exact pair-sum (≤ 2·127²), so
    /// the i32 adds are the same integers the scalar reference computes.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8p_lanes` dispatcher after runtime detection of AVX2; the
    // wrapper's length asserts guarantee every pointer offset below is
    // in bounds.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn avx2_gemm_i8p_lanes(
        acc: &mut [i32],
        xpairs: &[i32],
        wt: &[i16],
        fan_out: usize,
    ) {
        let mut r = 0usize;
        while r + 8 <= fan_out {
            let mut accv = _mm256_setzero_si256();
            for (p, &xp) in xpairs.iter().enumerate() {
                let xv = _mm256_set1_epi32(xp);
                let wv = _mm256_loadu_si256(wt.as_ptr().add((p * fan_out + r) * 2).cast());
                accv = _mm256_add_epi32(accv, _mm256_madd_epi16(xv, wv));
            }
            _mm256_storeu_si256(acc.as_mut_ptr().add(r).cast(), accv);
            r += 8;
        }
        super::lanes_tail_i8p(&mut acc[r..], xpairs, wt, fan_out, r);
    }

    /// Pair-interleaved matvec, SSE2 lane: identical structure 4-wide.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8p_lanes` dispatcher (SSE2 is baseline on x86-64); the
    // wrapper's length asserts keep every offset in bounds.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn sse2_gemm_i8p_lanes(
        acc: &mut [i32],
        xpairs: &[i32],
        wt: &[i16],
        fan_out: usize,
    ) {
        let mut r = 0usize;
        while r + 4 <= fan_out {
            let mut accv = _mm_setzero_si128();
            for (p, &xp) in xpairs.iter().enumerate() {
                let xv = _mm_set1_epi32(xp);
                let wv = _mm_loadu_si128(wt.as_ptr().add((p * fan_out + r) * 2).cast());
                accv = _mm_add_epi32(accv, _mm_madd_epi16(xv, wv));
            }
            _mm_storeu_si128(acc.as_mut_ptr().add(r).cast(), accv);
            r += 4;
        }
        super::lanes_tail_i8p(&mut acc[r..], xpairs, wt, fan_out, r);
    }

    /// Pair-interleaved matvec, AVX-512BW lane: identical structure
    /// 16-wide — one `madd` covers sixteen consecutive outputs' weight
    /// pairs.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8p_lanes` dispatcher after runtime detection of
    // avx512f+avx512bw; the wrapper's length asserts keep every offset
    // in bounds.
    #[target_feature(enable = "avx512f,avx512bw")]
    pub(super) unsafe fn avx512_gemm_i8p_lanes(
        acc: &mut [i32],
        xpairs: &[i32],
        wt: &[i16],
        fan_out: usize,
    ) {
        let mut r = 0usize;
        while r + 16 <= fan_out {
            let mut accv = _mm512_setzero_si512();
            for (p, &xp) in xpairs.iter().enumerate() {
                let xv = _mm512_set1_epi32(xp);
                let wv = _mm512_loadu_si512(wt.as_ptr().add((p * fan_out + r) * 2).cast());
                accv = _mm512_add_epi32(accv, _mm512_madd_epi16(xv, wv));
            }
            _mm512_storeu_si512(acc.as_mut_ptr().add(r).cast(), accv);
            r += 16;
        }
        super::lanes_tail_i8p(&mut acc[r..], xpairs, wt, fan_out, r);
    }

    /// Pair-interleaved matvec, AVX-512 VNNI lane: `vpdpwssd` fuses the
    /// `madd`+`add` pair into one instruction per sixteen outputs — the
    /// i16-pair layout is exactly the shape VNNI's word form consumes.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8p_lanes` dispatcher after runtime detection of
    // avx512f+avx512bw and the `avx512_vnni` capability bit; the
    // wrapper's length asserts keep every offset in bounds.
    #[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
    pub(super) unsafe fn avx512vnni_gemm_i8p_lanes(
        acc: &mut [i32],
        xpairs: &[i32],
        wt: &[i16],
        fan_out: usize,
    ) {
        let mut r = 0usize;
        while r + 16 <= fan_out {
            let mut accv = _mm512_setzero_si512();
            for (p, &xp) in xpairs.iter().enumerate() {
                let xv = _mm512_set1_epi32(xp);
                let wv = _mm512_loadu_si512(wt.as_ptr().add((p * fan_out + r) * 2).cast());
                accv = _mm512_dpwssd_epi32(accv, xv, wv);
            }
            _mm512_storeu_si512(acc.as_mut_ptr().add(r).cast(), accv);
            r += 16;
        }
        super::lanes_tail_i8p(&mut acc[r..], xpairs, wt, fan_out, r);
    }

    /// Pair-interleaved matvec, AVX-VNNI (VEX) lane: the AVX2 structure
    /// with the fused `vpdpwssd` accumulate.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8p_lanes` dispatcher after runtime detection of AVX2 and
    // the `avx_vnni` capability bit; the wrapper's length asserts keep
    // every offset in bounds.
    #[target_feature(enable = "avx2,avxvnni")]
    pub(super) unsafe fn avxvnni_gemm_i8p_lanes(
        acc: &mut [i32],
        xpairs: &[i32],
        wt: &[i16],
        fan_out: usize,
    ) {
        let mut r = 0usize;
        while r + 8 <= fan_out {
            let mut accv = _mm256_setzero_si256();
            for (p, &xp) in xpairs.iter().enumerate() {
                let xv = _mm256_set1_epi32(xp);
                let wv = _mm256_loadu_si256(wt.as_ptr().add((p * fan_out + r) * 2).cast());
                accv = _mm256_dpwssd_avx_epi32(accv, xv, wv);
            }
            _mm256_storeu_si256(acc.as_mut_ptr().add(r).cast(), accv);
            r += 8;
        }
        super::lanes_tail_i8p(&mut acc[r..], xpairs, wt, fan_out, r);
    }

    /// Max-|x| fold, AVX-512 lane: bitwise abs (`_mm512_abs_ps` clears
    /// the sign bit, exactly like the and-mask below), `maxps` fold,
    /// order-free horizontal reduce, scalar tail.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `max_abs_f32` dispatcher after runtime detection of
    // avx512f+avx512bw; offsets stay below the `i + 16 <= n` bound.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn avx512_max_abs_f32(x: &[f32]) -> f32 {
        let n = x.len();
        let mut mv = _mm512_setzero_ps();
        let mut i = 0usize;
        while i + 16 <= n {
            let v = _mm512_abs_ps(_mm512_loadu_ps(x.as_ptr().add(i)));
            mv = _mm512_max_ps(mv, v);
            i += 16;
        }
        let mut m = _mm512_reduce_max_ps(mv);
        for &v in &x[i..] {
            let a = v.abs();
            if a > m {
                m = a;
            }
        }
        m
    }

    /// Elementwise quantize, AVX-512 lane: same structure 16-wide; the
    /// ±0.5 compares land in opmask registers, so the adjustment uses
    /// mask-predicated add/sub of −1 instead of subtracting an all-ones
    /// vector mask — the resulting i32s are identical. After the
    /// [-127, 127] clamp the saturating narrow (`vpmovsdb`) is a plain
    /// truncation.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `quantize_i8` dispatcher after runtime detection of
    // avx512f+avx512bw; the wrapper asserts `src.len() == dst.len()` and
    // offsets stay below the `i + 16 <= n` bound.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn avx512_quantize_i8(src: &[f32], dst: &mut [i8], inv: f32) {
        let n = src.len();
        let invv = _mm512_set1_ps(inv);
        let half = _mm512_set1_ps(0.5);
        let nhalf = _mm512_set1_ps(-0.5);
        let lo = _mm512_set1_epi32(-127);
        let hi = _mm512_set1_epi32(127);
        let negone = _mm512_set1_epi32(-1);
        let mut i = 0usize;
        while i + 16 <= n {
            let x = _mm512_mul_ps(_mm512_loadu_ps(src.as_ptr().add(i)), invv);
            let t = _mm512_cvttps_epi32(x);
            let r = _mm512_sub_ps(x, _mm512_cvtepi32_ps(t));
            let ge = _mm512_cmp_ps_mask::<_CMP_GE_OQ>(r, half);
            let le = _mm512_cmp_ps_mask::<_CMP_LE_OQ>(r, nhalf);
            // Subtracting -1 where `ge` adds 1; adding -1 where `le`
            // subtracts 1 — the round-half-away adjustment.
            let q = _mm512_mask_sub_epi32(t, ge, t, negone);
            let q = _mm512_mask_add_epi32(q, le, q, negone);
            let q = _mm512_max_epi32(lo, _mm512_min_epi32(hi, q));
            let b = _mm512_cvtsepi32_epi8(q);
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), b);
            i += 16;
        }
        for (d, &v) in dst[i..].iter_mut().zip(&src[i..]) {
            *d = super::scalar::quantize_one_i8(v, inv);
        }
    }

    /// Max-|x| fold, AVX2 lane: abs via sign-bit mask, `maxps` fold,
    /// horizontal max, scalar tail. `max` is order-free over finite
    /// floats, so the tree reduction equals the scalar left fold.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `max_abs_f32` dispatcher after runtime detection of AVX2; offsets
    // stay below the `i + 8 <= n` bound.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn avx2_max_abs_f32(x: &[f32]) -> f32 {
        let n = x.len();
        let mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF));
        let mut mv = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= n {
            let v = _mm256_and_ps(mask, _mm256_loadu_ps(x.as_ptr().add(i)));
            mv = _mm256_max_ps(mv, v);
            i += 8;
        }
        let lo = _mm256_castps256_ps128(mv);
        let hi = _mm256_extractf128_ps::<1>(mv);
        let m4 = _mm_max_ps(lo, hi);
        let m2 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
        let m1 = _mm_max_ss(m2, _mm_shuffle_ps::<1>(m2, m2));
        let mut m = _mm_cvtss_f32(m1);
        for &v in &x[i..] {
            let a = v.abs();
            if a > m {
                m = a;
            }
        }
        m
    }

    /// Max-|x| fold, SSE2 lane: identical structure 4-wide.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `max_abs_f32` dispatcher (SSE2 is baseline on x86-64); offsets
    // stay below the `i + 4 <= n` bound.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn sse2_max_abs_f32(x: &[f32]) -> f32 {
        let n = x.len();
        let mask = _mm_castsi128_ps(_mm_set1_epi32(0x7FFF_FFFF));
        let mut mv = _mm_setzero_ps();
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm_and_ps(mask, _mm_loadu_ps(x.as_ptr().add(i)));
            mv = _mm_max_ps(mv, v);
            i += 4;
        }
        let m2 = _mm_max_ps(mv, _mm_movehl_ps(mv, mv));
        let m1 = _mm_max_ss(m2, _mm_shuffle_ps::<1>(m2, m2));
        let mut m = _mm_cvtss_f32(m1);
        for &v in &x[i..] {
            let a = v.abs();
            if a > m {
                m = a;
            }
        }
        m
    }

    /// Elementwise quantize, AVX2 lane: multiply by the reciprocal scale,
    /// truncate (`cvttps2dq`), recover the exact fraction, adjust by the
    /// ±0.5 compares (`_OQ`: false on NaN, matching the scalar compare),
    /// clamp in i32, then pack 8 lanes down to i8.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `quantize_i8` dispatcher after runtime detection of AVX2; the
    // wrapper asserts `src.len() == dst.len()` and offsets stay below the
    // `i + 8 <= n` bound.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn avx2_quantize_i8(src: &[f32], dst: &mut [i8], inv: f32) {
        let n = src.len();
        let invv = _mm256_set1_ps(inv);
        let half = _mm256_set1_ps(0.5);
        let nhalf = _mm256_set1_ps(-0.5);
        let lo = _mm256_set1_epi32(-127);
        let hi = _mm256_set1_epi32(127);
        let mut i = 0usize;
        while i + 8 <= n {
            let x = _mm256_mul_ps(_mm256_loadu_ps(src.as_ptr().add(i)), invv);
            let t = _mm256_cvttps_epi32(x);
            let r = _mm256_sub_ps(x, _mm256_cvtepi32_ps(t));
            let ge = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_GE_OQ>(r, half));
            let le = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LE_OQ>(r, nhalf));
            // Masks are all-ones (-1) where true: subtracting `ge` adds 1,
            // adding `le` subtracts 1 — the round-half-away adjustment.
            let q = _mm256_add_epi32(_mm256_sub_epi32(t, ge), le);
            let q = _mm256_max_epi32(lo, _mm256_min_epi32(hi, q));
            let qlo = _mm256_castsi256_si128(q);
            let qhi = _mm256_extracti128_si256::<1>(q);
            let w = _mm_packs_epi32(qlo, qhi);
            let b = _mm_packs_epi16(w, w);
            _mm_storel_epi64(dst.as_mut_ptr().add(i).cast(), b);
            i += 8;
        }
        for (d, &v) in dst[i..].iter_mut().zip(&src[i..]) {
            *d = super::scalar::quantize_one_i8(v, inv);
        }
    }

    /// Elementwise quantize, SSE2 lane: same structure 4-wide; the i32
    /// clamp is a compare-and-blend (SSE2 has no `pminsd`/`pmaxsd`).
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `quantize_i8` dispatcher (SSE2 is baseline on x86-64); the wrapper
    // asserts `src.len() == dst.len()` and offsets stay below the
    // `i + 4 <= n` bound.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn sse2_quantize_i8(src: &[f32], dst: &mut [i8], inv: f32) {
        let n = src.len();
        let invv = _mm_set1_ps(inv);
        let half = _mm_set1_ps(0.5);
        let nhalf = _mm_set1_ps(-0.5);
        let lo = _mm_set1_epi32(-127);
        let hi = _mm_set1_epi32(127);
        let mut i = 0usize;
        while i + 4 <= n {
            let x = _mm_mul_ps(_mm_loadu_ps(src.as_ptr().add(i)), invv);
            let t = _mm_cvttps_epi32(x);
            let r = _mm_sub_ps(x, _mm_cvtepi32_ps(t));
            let ge = _mm_castps_si128(_mm_cmpge_ps(r, half));
            let le = _mm_castps_si128(_mm_cmple_ps(r, nhalf));
            // Masks are all-ones (-1) where true: subtracting `ge` adds 1,
            // adding `le` subtracts 1 — the round-half-away adjustment.
            let q = _mm_add_epi32(_mm_sub_epi32(t, ge), le);
            // min(hi, q): keep q where q < hi, else hi; then max(lo, ·).
            let qlt = _mm_cmplt_epi32(q, hi);
            let q = _mm_or_si128(_mm_and_si128(qlt, q), _mm_andnot_si128(qlt, hi));
            let qgt = _mm_cmpgt_epi32(q, lo);
            let q = _mm_or_si128(_mm_and_si128(qgt, q), _mm_andnot_si128(qgt, lo));
            let w = _mm_packs_epi32(q, q);
            let b = _mm_packs_epi16(w, w);
            // Four bytes of `b` are live; store via a scalar lane move to
            // avoid writing past `dst`.
            let quad = _mm_cvtsi128_si32(b);
            dst.as_mut_ptr().add(i).cast::<i32>().write_unaligned(quad);
            i += 4;
        }
        for (d, &v) in dst[i..].iter_mut().zip(&src[i..]) {
            *d = super::scalar::quantize_one_i8(v, inv);
        }
    }
}

/// The aarch64/NEON backend: the complete kernel set — f32 and int8 — at
/// 128-bit width, mirroring the x86 kernel-set macro statement for
/// statement so the same bit-identity-by-construction argument applies:
/// independent 4-wide lanes, inner dimension ascending, separate
/// `vmulq`+`vaddq` (never `vfmaq` — no fusion), compares producing
/// all-ones `u32` lane masks combined with `vbicq`/`vandq` exactly like
/// the x86 `andnot`/`and` selects, and scalar tails running the reference
/// expressions. The int8 kernels use the exactness argument instead:
/// `vmull_s8` products pair-accumulated by `vpadalq_s16` are exact i32s,
/// so horizontal order is free (see the module docs).
#[cfg(target_arch = "aarch64")]
mod neon {
    use core::arch::aarch64::*;

    // SAFETY: target_feature-only unsafety — reachable solely via
    // `dispatch!` after runtime detection of NEON; pointer offsets stay
    // below the `i + 4 <= n` slice bound.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy(acc: &mut [f32], xs: &[f32], w: f32) {
        let n = acc.len().min(xs.len());
        let wv = vdupq_n_f32(w);
        let mut i = 0usize;
        while i + 4 <= n {
            let x = vld1q_f32(xs.as_ptr().add(i));
            let a = vld1q_f32(acc.as_ptr().add(i));
            vst1q_f32(acc.as_mut_ptr().add(i), vaddq_f32(a, vmulq_f32(wv, x)));
            i += 4;
        }
        for (a, &v) in acc[i..n].iter_mut().zip(&xs[i..n]) {
            *a += w * v;
        }
    }

    // SAFETY: target_feature-only unsafety — reachable solely via
    // `dispatch!` after runtime detection of NEON; pointer offsets stay
    // below the `i + 4 <= n` slice bound.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy2(acc: &mut [f32], x0: &[f32], w0: f32, x1: &[f32], w1: f32) {
        let n = acc.len().min(x0.len()).min(x1.len());
        let w0v = vdupq_n_f32(w0);
        let w1v = vdupq_n_f32(w1);
        let mut i = 0usize;
        while i + 4 <= n {
            let a = vld1q_f32(acc.as_ptr().add(i));
            let v0 = vld1q_f32(x0.as_ptr().add(i));
            let v1 = vld1q_f32(x1.as_ptr().add(i));
            vst1q_f32(
                acc.as_mut_ptr().add(i),
                vaddq_f32(vaddq_f32(a, vmulq_f32(w0v, v0)), vmulq_f32(w1v, v1)),
            );
            i += 4;
        }
        for ((a, &v0), &v1) in acc[i..n].iter_mut().zip(&x0[i..n]).zip(&x1[i..n]) {
            *a = (*a + w0 * v0) + w1 * v1;
        }
    }

    /// `y[i] += ws[i] · x` — weight vector times splatted scalar.
    // SAFETY: target_feature-only unsafety — reachable solely via
    // `dispatch!` after runtime detection of NEON; pointer offsets stay
    // below the `i + 4 <= n` slice bound.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy_wx(y: &mut [f32], ws: &[f32], x: f32) {
        let n = y.len().min(ws.len());
        let xv = vdupq_n_f32(x);
        let mut i = 0usize;
        while i + 4 <= n {
            let wv = vld1q_f32(ws.as_ptr().add(i));
            let a = vld1q_f32(y.as_ptr().add(i));
            vst1q_f32(y.as_mut_ptr().add(i), vaddq_f32(a, vmulq_f32(wv, xv)));
            i += 4;
        }
        for (a, &wv) in y[i..n].iter_mut().zip(&ws[i..n]) {
            *a += wv * x;
        }
    }

    /// `acc[i] += xs[i]` over the overlapping prefix.
    // SAFETY: target_feature-only unsafety — reachable solely via
    // `dispatch!` after runtime detection of NEON; pointer offsets stay
    // below the `i + 4 <= n` slice bound.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn add_assign(acc: &mut [f32], xs: &[f32]) {
        let n = acc.len().min(xs.len());
        let mut i = 0usize;
        while i + 4 <= n {
            let a = vld1q_f32(acc.as_ptr().add(i));
            let x = vld1q_f32(xs.as_ptr().add(i));
            vst1q_f32(acc.as_mut_ptr().add(i), vaddq_f32(a, x));
            i += 4;
        }
        for (a, &v) in acc[i..n].iter_mut().zip(&xs[i..n]) {
            *a += v;
        }
    }

    // SAFETY: target_feature-only unsafety — reachable solely via
    // `dispatch!` after runtime detection of NEON.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn gemm_lanes(acc: &mut [f32], wrow: &[f32], xt: &[f32]) {
        let tl = acc.len();
        if tl == 0 {
            return;
        }
        let mut ws = wrow.chunks_exact(2);
        let mut cols = xt.chunks_exact(2 * tl);
        for (wp, cp) in ws.by_ref().zip(cols.by_ref()) {
            let (c0, c1) = cp.split_at(tl);
            axpy2(acc, c0, wp[0], c1, wp[1]);
        }
        for (&w, col) in ws.remainder().iter().zip(cols.remainder().chunks_exact(tl)) {
            axpy(acc, col, w);
        }
    }

    // SAFETY: target_feature-only unsafety — reachable solely via
    // `dispatch!` after runtime detection of NEON.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn matvec_lanes(y: &mut [f32], wt: &[f32], x: &[f32]) {
        let r_dim = y.len();
        if r_dim == 0 {
            return;
        }
        y.fill(0.0);
        let mut xs = x.chunks_exact(2);
        let mut ws = wt.chunks_exact(2 * r_dim);
        for (xp, wp) in xs.by_ref().zip(ws.by_ref()) {
            let (w0, w1) = wp.split_at(r_dim);
            axpy2(y, w0, xp[0], w1, xp[1]);
        }
        for (&xv, wrow) in xs
            .remainder()
            .iter()
            .zip(ws.remainder().chunks_exact(r_dim))
        {
            axpy(y, wrow, xv);
        }
    }

    // SAFETY: target_feature-only unsafety — reachable solely via
    // `dispatch!` after runtime detection of NEON.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn matvec_t_sample(y: &mut [f32], w: &[f32], x: &[f32]) {
        y.fill(0.0);
        let cols = y.len();
        if cols == 0 {
            return;
        }
        for (&xv, row) in x.iter().zip(w.chunks_exact(cols)) {
            // lint:allow(float-eq): exact-zero sparsity skip, identical to the scalar kernel
            if xv == 0.0 {
                continue;
            }
            axpy_wx(y, row, xv);
        }
    }

    // SAFETY: target_feature-only unsafety — reachable solely via
    // `dispatch!` after runtime detection of NEON.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn outer_rows_sample(
        dw: &mut [f32],
        a_row: &[f32],
        b_row: &[f32],
        alpha: f32,
    ) {
        let cols = b_row.len();
        if cols == 0 {
            return;
        }
        for (&av, row) in a_row.iter().zip(dw.chunks_exact_mut(cols)) {
            // lint:allow(float-eq): exact-zero sparsity skip, identical to the scalar kernel
            if av == 0.0 {
                continue;
            }
            axpy(row, b_row, alpha * av);
        }
    }

    // SAFETY: target_feature-only unsafety — reachable solely via
    // `dispatch!` after runtime detection of NEON.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn outer_lanes_sample(
        dwt: &mut [f32],
        a_row: &[f32],
        b_row: &[f32],
        alpha: f32,
    ) {
        let rows = a_row.len();
        if rows == 0 {
            return;
        }
        for (&bv, drow) in b_row.iter().zip(dwt.chunks_exact_mut(rows)) {
            // lint:allow(float-eq): exact-zero sparsity skip, identical to the scalar kernel
            if bv == 0.0 {
                continue;
            }
            axpy(drow, a_row, alpha * bv);
        }
    }

    // SAFETY: target_feature-only unsafety — reachable solely via
    // `dispatch!` after runtime detection of NEON.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn add_bias_rows(out: &mut [f32], bias: &[f32]) {
        if bias.is_empty() {
            return;
        }
        for row in out.chunks_exact_mut(bias.len()) {
            add_assign(row, bias);
        }
    }

    // SAFETY: target_feature-only unsafety — reachable solely via
    // `dispatch!` after runtime detection of NEON.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn sum_rows(acc: &mut [f32], rows: &[f32]) {
        if acc.is_empty() {
            return;
        }
        for row in rows.chunks_exact(acc.len()) {
            add_assign(acc, row);
        }
    }

    /// `bic(x, x < 0)` zeroes exactly the lanes the scalar branch zeroes:
    /// `-0.0` is not `< 0.0` (kept) and NaN compares false (kept
    /// bit-exactly) — `vbicq_u32(a, m)` is `a & !m`, the NEON spelling of
    /// the x86 `andnot(m, a)` select.
    // SAFETY: target_feature-only unsafety — reachable solely via
    // `dispatch!` after runtime detection of NEON; pointer offsets stay
    // below the `i + 4 <= n` slice bound.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn relu(xs: &mut [f32]) {
        let n = xs.len();
        let zero = vdupq_n_f32(0.0);
        let mut i = 0usize;
        while i + 4 <= n {
            let x = vld1q_f32(xs.as_ptr().add(i));
            let neg = vcltq_f32(x, zero);
            let kept = vreinterpretq_f32_u32(vbicq_u32(vreinterpretq_u32_f32(x), neg));
            vst1q_f32(xs.as_mut_ptr().add(i), kept);
            i += 4;
        }
        for x in &mut xs[i..] {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
    }

    /// Multiply by an `and`-selected `{0.0, 1.0}` mask — the same
    /// `d * 0.0` / `d * 1.0` the scalar branchless select performs.
    // SAFETY: target_feature-only unsafety — reachable solely via
    // `dispatch!` after runtime detection of NEON; pointer offsets stay
    // below the `i + 4 <= n` slice bound.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn relu_mask(deltas: &mut [f32], ys: &[f32]) {
        let n = deltas.len().min(ys.len());
        let zero = vdupq_n_f32(0.0);
        let one = vdupq_n_f32(1.0);
        let mut i = 0usize;
        while i + 4 <= n {
            let d = vld1q_f32(deltas.as_ptr().add(i));
            let y = vld1q_f32(ys.as_ptr().add(i));
            let pos = vcgtq_f32(y, zero);
            let m = vreinterpretq_f32_u32(vandq_u32(vreinterpretq_u32_f32(one), pos));
            vst1q_f32(deltas.as_mut_ptr().add(i), vmulq_f32(d, m));
            i += 4;
        }
        for (d, &y) in deltas[i..n].iter_mut().zip(&ys[i..n]) {
            *d *= if y > 0.0 { 1.0 } else { 0.0 };
        }
    }

    // SAFETY: target_feature-only unsafety — reachable solely via
    // `dispatch!` after runtime detection of NEON; pointer offsets stay
    // below the `i + 4 <= n` slice bound.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn tanh_mask(deltas: &mut [f32], ys: &[f32]) {
        let n = deltas.len().min(ys.len());
        let one = vdupq_n_f32(1.0);
        let mut i = 0usize;
        while i + 4 <= n {
            let d = vld1q_f32(deltas.as_ptr().add(i));
            let y = vld1q_f32(ys.as_ptr().add(i));
            let m = vsubq_f32(one, vmulq_f32(y, y));
            vst1q_f32(deltas.as_mut_ptr().add(i), vmulq_f32(d, m));
            i += 4;
        }
        for (d, &y) in deltas[i..n].iter_mut().zip(&ys[i..n]) {
            *d *= 1.0 - y * y;
        }
    }

    // SAFETY: target_feature-only unsafety — reachable solely via
    // `dispatch!` after runtime detection of NEON; pointer offsets stay
    // below the `i + 4 <= n` slice bound.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn sigmoid_mask(deltas: &mut [f32], ys: &[f32]) {
        let n = deltas.len().min(ys.len());
        let one = vdupq_n_f32(1.0);
        let mut i = 0usize;
        while i + 4 <= n {
            let d = vld1q_f32(deltas.as_ptr().add(i));
            let y = vld1q_f32(ys.as_ptr().add(i));
            let m = vmulq_f32(y, vsubq_f32(one, y));
            vst1q_f32(deltas.as_mut_ptr().add(i), vmulq_f32(d, m));
            i += 4;
        }
        for (d, &y) in deltas[i..n].iter_mut().zip(&ys[i..n]) {
            *d *= y * (1.0 - y);
        }
    }

    /// Exact i32 dot product: `vmull_s8` widens i8×i8 to i16 products
    /// (exact, ≤ 127²), `vpadalq_s16` pair-accumulates them into i32
    /// lanes (exact), and `vaddvq_s32` reduces — order-free by the
    /// exactness argument.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8_i32` dispatcher after runtime detection of NEON; pointer
    // offsets stay below the `i + 16 <= n` slice bound.
    #[target_feature(enable = "neon")]
    unsafe fn neon_dot_i8(x: &[i8], w: &[i8]) -> i32 {
        let n = x.len().min(w.len());
        let mut accv = vdupq_n_s32(0);
        let mut i = 0usize;
        while i + 16 <= n {
            let xv = vld1q_s8(x.as_ptr().add(i));
            let wv = vld1q_s8(w.as_ptr().add(i));
            let plo = vmull_s8(vget_low_s8(xv), vget_low_s8(wv));
            let phi = vmull_s8(vget_high_s8(xv), vget_high_s8(wv));
            accv = vpadalq_s16(accv, plo);
            accv = vpadalq_s16(accv, phi);
            i += 16;
        }
        let mut sum = vaddvq_s32(accv);
        for (&xv, &wv) in x[i..n].iter().zip(&w[i..n]) {
            sum += i32::from(xv) * i32::from(wv);
        }
        sum
    }

    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8_i32` dispatcher after runtime detection of NEON.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn neon_gemm_i8_i32(acc: &mut [i32], x: &[i8], w: &[i8], k_dim: usize) {
        if k_dim == 0 {
            acc.fill(0);
            return;
        }
        let mut out = acc.iter_mut();
        for xrow in x.chunks_exact(k_dim) {
            for wrow in w.chunks_exact(k_dim) {
                let s = neon_dot_i8(xrow, wrow);
                if let Some(slot) = out.next() {
                    *slot = s;
                }
            }
        }
    }

    /// Pair-interleaved matvec, NEON lane: broadcast one packed input
    /// pair as four i16 `(x0, x1)` copies, `vmull_s16` against four
    /// consecutive outputs' weight pairs, then `vpaddq_s32` folds
    /// adjacent products into the four exact pair-sums.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `gemm_i8p_lanes` dispatcher after runtime detection of NEON; the
    // wrapper's length asserts keep every offset in bounds.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn neon_gemm_i8p_lanes(
        acc: &mut [i32],
        xpairs: &[i32],
        wt: &[i16],
        fan_out: usize,
    ) {
        let mut r = 0usize;
        while r + 4 <= fan_out {
            let mut accv = vdupq_n_s32(0);
            for (p, &xp) in xpairs.iter().enumerate() {
                let xv = vreinterpretq_s16_s32(vdupq_n_s32(xp));
                let wv = vld1q_s16(wt.as_ptr().add((p * fan_out + r) * 2));
                let plo = vmull_s16(vget_low_s16(xv), vget_low_s16(wv));
                let phi = vmull_s16(vget_high_s16(xv), vget_high_s16(wv));
                accv = vaddq_s32(accv, vpaddq_s32(plo, phi));
            }
            vst1q_s32(acc.as_mut_ptr().add(r), accv);
            r += 4;
        }
        super::lanes_tail_i8p(&mut acc[r..], xpairs, wt, fan_out, r);
    }

    /// Max-|x| fold: `vabsq` + `vmaxq` lanes, order-free horizontal
    /// `vmaxvq`, scalar tail.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `max_abs_f32` dispatcher after runtime detection of NEON; offsets
    // stay below the `i + 4 <= n` bound.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn neon_max_abs_f32(x: &[f32]) -> f32 {
        let n = x.len();
        let mut mv = vdupq_n_f32(0.0);
        let mut i = 0usize;
        while i + 4 <= n {
            mv = vmaxq_f32(mv, vabsq_f32(vld1q_f32(x.as_ptr().add(i))));
            i += 4;
        }
        let mut m = vmaxvq_f32(mv);
        for &v in &x[i..] {
            let a = v.abs();
            if a > m {
                m = a;
            }
        }
        m
    }

    /// Round-half-away core of the NEON quantizer: truncate
    /// (`vcvtq_s32_f32` rounds toward zero, like the scalar `as i32`),
    /// recover the exact fraction, adjust via the ±0.5 compare masks
    /// (all-ones = −1 as i32, so subtracting the `ge` mask adds 1 and
    /// adding the `le` mask subtracts 1), clamp in i32.
    // SAFETY: target_feature-only unsafety — called exclusively from
    // `neon_quantize_i8` below, itself gated on runtime NEON detection.
    #[target_feature(enable = "neon")]
    unsafe fn quantize_lane_i32(x: float32x4_t) -> int32x4_t {
        let half = vdupq_n_f32(0.5);
        let nhalf = vdupq_n_f32(-0.5);
        let lo = vdupq_n_s32(-127);
        let hi = vdupq_n_s32(127);
        let t = vcvtq_s32_f32(x);
        let r = vsubq_f32(x, vcvtq_f32_s32(t));
        let ge = vcgeq_f32(r, half);
        let le = vcleq_f32(r, nhalf);
        let q = vsubq_s32(t, vreinterpretq_s32_u32(ge));
        let q = vaddq_s32(q, vreinterpretq_s32_u32(le));
        vmaxq_s32(lo, vminq_s32(hi, q))
    }

    /// Elementwise quantize, NEON lane: two 4-wide groups per iteration
    /// so the narrow chain (`vmovn_s32` → `vmovn_s16`) emits eight i8
    /// codes per store; values are clamped to [-127, 127] first, so the
    /// truncating narrows are exact.
    // SAFETY: target_feature-only unsafety — reachable solely via the
    // `quantize_i8` dispatcher after runtime detection of NEON; the
    // wrapper asserts `src.len() == dst.len()` and offsets stay below
    // the `i + 8 <= n` bound.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn neon_quantize_i8(src: &[f32], dst: &mut [i8], inv: f32) {
        let n = src.len();
        let invv = vdupq_n_f32(inv);
        let mut i = 0usize;
        while i + 8 <= n {
            let x0 = vmulq_f32(vld1q_f32(src.as_ptr().add(i)), invv);
            let x1 = vmulq_f32(vld1q_f32(src.as_ptr().add(i + 4)), invv);
            let q0 = quantize_lane_i32(x0);
            let q1 = quantize_lane_i32(x1);
            let w = vcombine_s16(vmovn_s32(q0), vmovn_s32(q1));
            vst1_s8(dst.as_mut_ptr().add(i), vmovn_s16(w));
            i += 8;
        }
        for (d, &v) in dst[i..].iter_mut().zip(&src[i..]) {
            *d = super::scalar::quantize_one_i8(v, inv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudorandom values with exact zeros and negative
    /// zeros sprinkled in (the cases the sparsity skips and sign rules
    /// care about).
    fn vals(n: usize, seed: u32) -> Vec<f32> {
        let mut s = seed.wrapping_mul(2654435761).max(3);
        (0..n)
            .map(|i| {
                s ^= s << 13;
                s ^= s >> 17;
                s ^= s << 5;
                if i % 7 == 3 {
                    0.0
                } else if i % 11 == 5 {
                    -0.0
                } else {
                    (s % 2000) as f32 / 100.0 - 10.0
                }
            })
            .collect()
    }

    fn bits(xs: &[f32]) -> Vec<u32> {
        xs.iter().map(|v| v.to_bits()).collect()
    }

    /// Lengths that exercise full vectors and every tail size for both
    /// 4- and 8-wide backends.
    const LENS: &[usize] = &[0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 67];

    fn non_scalar() -> impl Iterator<Item = KernelBackend> {
        available()
            .iter()
            .copied()
            .filter(|&b| b != KernelBackend::Scalar)
    }

    #[test]
    fn name_parse_roundtrip() {
        for b in KernelBackend::ALL {
            assert_eq!(KernelBackend::parse(b.name()), Some(b));
            assert_eq!(KernelBackend::parse(&b.name().to_uppercase()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
        assert_eq!(KernelBackend::parse("avx1024"), None);
        assert_eq!(KernelBackend::parse(""), None);
    }

    #[test]
    fn all_is_ordered_widest_first_and_ends_with_scalar() {
        assert_eq!(KernelBackend::ALL.last(), Some(&KernelBackend::Scalar));
        assert!(KernelBackend::Scalar.is_available());
        // `available()` preserves ALL's preference order.
        let avail = available();
        let order: Vec<usize> = avail
            .iter()
            .map(|b| KernelBackend::ALL.iter().position(|a| a == b).unwrap())
            .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "order={order:?}");
    }

    #[test]
    fn available_ends_with_scalar_and_contains_dispatched() {
        let list = available();
        assert_eq!(list.last(), Some(&KernelBackend::Scalar));
        assert!(list.contains(&dispatched()));
        assert!(list.iter().all(|b| b.is_available()));
    }

    #[test]
    fn force_guard_nests_and_restores() {
        assert_eq!(active(), dispatched());
        {
            let _outer = force(KernelBackend::Scalar);
            assert_eq!(active(), KernelBackend::Scalar);
            {
                let best = available()[0];
                let _inner = force(best);
                assert_eq!(active(), best);
            }
            assert_eq!(active(), KernelBackend::Scalar);
        }
        assert_eq!(active(), dispatched());
    }

    #[test]
    fn gemm_and_matvec_lanes_match_scalar_bitwise() {
        for be in non_scalar() {
            for &tl in LENS {
                for k_dim in [0usize, 1, 2, 3, 5, 8] {
                    let wrow = vals(k_dim, 1);
                    let xt = vals(k_dim * tl, 2);
                    let mut want = vals(tl, 3);
                    let mut got = want.clone();
                    scalar::gemm_lanes(&mut want, &wrow, &xt);
                    super::gemm_lanes(be, &mut got, &wrow, &xt);
                    assert_eq!(bits(&got), bits(&want), "{be} gemm tl={tl} k={k_dim}");

                    let wt = vals(k_dim * tl, 4);
                    let x = vals(k_dim, 5);
                    let mut want = vec![9.0f32; tl];
                    let mut got = want.clone();
                    scalar::matvec_lanes(&mut want, &wt, &x);
                    super::matvec_lanes(be, &mut got, &wt, &x);
                    assert_eq!(bits(&got), bits(&want), "{be} matvec tl={tl} k={k_dim}");
                }
            }
        }
    }

    #[test]
    fn matvec_t_and_outer_samples_match_scalar_bitwise() {
        for be in non_scalar() {
            for &cols in LENS {
                for rows in [0usize, 1, 2, 3, 5, 8] {
                    let w = vals(rows * cols, 6);
                    let x = vals(rows, 7); // includes exact zeros → skip path
                    let mut want = vec![1.0f32; cols];
                    let mut got = want.clone();
                    scalar::matvec_t_sample(&mut want, &w, &x);
                    super::matvec_t_sample(be, &mut got, &w, &x);
                    assert_eq!(bits(&got), bits(&want), "{be} matvec_t {rows}x{cols}");

                    let a = vals(rows, 8);
                    let b = vals(cols, 9);
                    let mut want = vals(rows * cols, 10);
                    let mut got = want.clone();
                    scalar::outer_rows_sample(&mut want, &a, &b, 0.37);
                    super::outer_rows_sample(be, &mut got, &a, &b, 0.37);
                    assert_eq!(bits(&got), bits(&want), "{be} outer_rows {rows}x{cols}");

                    let mut want = vals(rows * cols, 11);
                    let mut got = want.clone();
                    scalar::outer_lanes_sample(&mut want, &a, &b, -1.1);
                    super::outer_lanes_sample(be, &mut got, &a, &b, -1.1);
                    assert_eq!(bits(&got), bits(&want), "{be} outer_lanes {rows}x{cols}");
                }
            }
        }
    }

    #[test]
    fn bias_and_row_sums_match_scalar_bitwise() {
        for be in non_scalar() {
            for &n in LENS {
                for samples in [0usize, 1, 3, 4] {
                    let bias = vals(n, 12);
                    let mut want = vals(samples * n, 13);
                    let mut got = want.clone();
                    scalar::add_bias_rows(&mut want, &bias);
                    super::add_bias_rows(be, &mut got, &bias);
                    assert_eq!(bits(&got), bits(&want), "{be} bias n={n} s={samples}");

                    let rows = vals(samples * n, 14);
                    let mut want = vals(n, 15);
                    let mut got = want.clone();
                    scalar::sum_rows(&mut want, &rows);
                    super::sum_rows(be, &mut got, &rows);
                    assert_eq!(bits(&got), bits(&want), "{be} sums n={n} s={samples}");
                }
            }
        }
    }

    #[test]
    fn activations_match_scalar_bitwise_including_signed_zero_and_nan() {
        for be in non_scalar() {
            for &n in LENS {
                let mut xs = vals(n, 16);
                if n > 2 {
                    xs[1] = f32::from_bits(0x7fc0_1234); // NaN with payload
                }
                let mut want = xs.clone();
                let mut got = xs;
                scalar::relu(&mut want);
                super::relu(be, &mut got);
                assert_eq!(bits(&got), bits(&want), "{be} relu n={n}");

                let ys = vals(n, 17);
                let mut want = vals(n, 18);
                let mut got = want.clone();
                scalar::relu_mask(&mut want, &ys);
                super::relu_mask(be, &mut got, &ys);
                assert_eq!(bits(&got), bits(&want), "{be} relu_mask n={n}");

                let mut want = vals(n, 19);
                let mut got = want.clone();
                scalar::tanh_mask(&mut want, &ys);
                super::tanh_mask(be, &mut got, &ys);
                assert_eq!(bits(&got), bits(&want), "{be} tanh_mask n={n}");

                let mut want = vals(n, 20);
                let mut got = want.clone();
                scalar::sigmoid_mask(&mut want, &ys);
                super::sigmoid_mask(be, &mut got, &ys);
                assert_eq!(bits(&got), bits(&want), "{be} sigmoid_mask n={n}");
            }
        }
    }

    #[test]
    fn relu_keeps_negative_zero_and_clamps_to_positive_zero() {
        for &be in available() {
            let mut xs = vec![-0.0f32, -3.5, 0.0, 2.0, -1e-30, f32::NAN];
            super::relu(be, &mut xs);
            assert_eq!(xs[0].to_bits(), (-0.0f32).to_bits(), "{be}: -0.0 kept");
            assert_eq!(xs[1].to_bits(), 0.0f32.to_bits(), "{be}: clamp is +0.0");
            assert_eq!(xs[4].to_bits(), 0.0f32.to_bits(), "{be}: tiny negative");
            assert!(xs[5].is_nan(), "{be}: NaN preserved");
        }
    }

    /// Deterministic pseudorandom i8 values covering the full ±127 range
    /// (and never -128 — the quantizer's symmetric range).
    fn i8_vals(n: usize, seed: u32) -> Vec<i8> {
        let mut s = seed.wrapping_mul(2654435761).max(3);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 17;
                s ^= s << 5;
                ((s % 255) as i16 - 127) as i8
            })
            .collect()
    }

    #[test]
    fn gemm_i8_matches_scalar_exactly_across_backends() {
        // Tail sizes around the 16-wide vector body, plus degenerate dims.
        for be in non_scalar() {
            for &k in &[0usize, 1, 2, 7, 15, 16, 17, 31, 32, 33, 48, 100] {
                for (rows, cols) in [(0usize, 3usize), (1, 1), (2, 3), (3, 5), (4, 8)] {
                    let x = i8_vals(rows * k, 21);
                    let w = i8_vals(cols * k, 22);
                    let mut want = vec![7i32; rows * cols];
                    let mut got = want.clone();
                    scalar::gemm_i8_i32(&mut want, &x, &w, k);
                    super::gemm_i8_i32(be, &mut got, &x, &w, k);
                    assert_eq!(got, want, "{be} i8 gemm {rows}x{cols} k={k}");
                }
            }
        }
    }

    #[test]
    fn gemm_i8_extreme_magnitudes_do_not_overflow() {
        // All-|127| operands at a length big enough to cross the vector
        // body: partial sums reach k·127² and must remain exact.
        let k = 1024usize;
        let x = vec![127i8; k];
        let w = vec![-127i8; k];
        let mut want = vec![0i32; 1];
        scalar::gemm_i8_i32(&mut want, &x, &w, k);
        assert_eq!(want[0], -(k as i32) * 127 * 127);
        for be in non_scalar() {
            let mut got = vec![0i32; 1];
            super::gemm_i8_i32(be, &mut got, &x, &w, k);
            assert_eq!(got, want, "{be} extreme i8 gemm");
        }
    }

    #[test]
    fn pack_i8_pairs_round_trips_and_pads_odd_tails() {
        let x = i8_vals(17, 31);
        let mut packed = Vec::new();
        super::pack_i8_pairs(&x, &mut packed);
        assert_eq!(packed.len(), 9);
        for (p, &xp) in packed.iter().enumerate() {
            let x0 = (xp & 0xFFFF) as u16 as i16;
            let x1 = (xp >> 16) as u16 as i16;
            assert_eq!(x0, i16::from(x[2 * p]));
            let want1 = x.get(2 * p + 1).copied().map_or(0, i16::from);
            assert_eq!(x1, want1, "pair {p}");
        }
        // Reuse clears previous contents.
        super::pack_i8_pairs(&[], &mut packed);
        assert!(packed.is_empty());
    }

    #[test]
    fn gemm_i8p_lanes_matches_scalar_exactly_across_backends() {
        // fan_out values around the 4- and 8-wide vector bodies, and
        // fan_in values crossing the odd-tail padding.
        for be in non_scalar() {
            for &k in &[0usize, 1, 2, 3, 4, 5, 8, 64] {
                for &fan_out in &[0usize, 1, 3, 4, 5, 7, 8, 9, 16, 17, 33, 64] {
                    let x = i8_vals(k, 41);
                    let mut xpairs = Vec::new();
                    super::pack_i8_pairs(&x, &mut xpairs);
                    let wt = i8_vals(xpairs.len() * fan_out * 2, 42)
                        .into_iter()
                        .map(i16::from)
                        .collect::<Vec<_>>();
                    let mut want = vec![7i32; fan_out];
                    let mut got = vec![-7i32; fan_out];
                    scalar::gemm_i8p_lanes(&mut want, &xpairs, &wt, fan_out);
                    super::gemm_i8p_lanes(be, &mut got, &xpairs, &wt, fan_out);
                    assert_eq!(got, want, "{be} i8p lanes k={k} fan_out={fan_out}");
                }
            }
        }
    }

    #[test]
    fn gemm_i8p_lanes_extreme_magnitudes_stay_exact() {
        // All-|127| pairs at the documented pair bound's working size:
        // per-output sums reach pairs·2·127² and must remain exact i32.
        let pairs = 32usize;
        let fan_out = 9usize;
        let xpairs = vec![
            {
                let b = i32::from(127u16);
                b | (b << 16)
            };
            pairs
        ];
        let wt = vec![-127i16; pairs * fan_out * 2];
        let mut want = vec![0i32; fan_out];
        scalar::gemm_i8p_lanes(&mut want, &xpairs, &wt, fan_out);
        assert!(want.iter().all(|&v| v == -(pairs as i32) * 2 * 127 * 127));
        for be in non_scalar() {
            let mut got = vec![0i32; fan_out];
            super::gemm_i8p_lanes(be, &mut got, &xpairs, &wt, fan_out);
            assert_eq!(got, want, "{be} extreme i8p lanes");
        }
    }

    /// The backend dispatchers pick the VNNI instruction form whenever
    /// the host has it, which would leave the plain madd forms untested
    /// on VNNI hosts (and vice versa). Pin every compiled-in x86 int8
    /// form directly against scalar, gated on its own ISA bits.
    #[test]
    #[cfg(target_arch = "x86_64")]
    fn every_x86_int8_form_matches_scalar_exactly() {
        type GemmFn = unsafe fn(&mut [i32], &[i8], &[i8], usize);
        type LanesFn = unsafe fn(&mut [i32], &[i32], &[i16], usize);
        let caps = capabilities();
        let avx512 = KernelBackend::Avx512.is_available();
        let gemms: &[(&str, bool, GemmFn)] = &[
            ("sse2", caps.sse2, i8x86::sse2_gemm_i8_i32),
            ("avx2", caps.avx2, i8x86::avx2_gemm_i8_i32),
            (
                "avx-vnni",
                caps.avx2 && caps.avx_vnni,
                i8x86::avxvnni_gemm_i8_i32,
            ),
            ("avx512", avx512, i8x86::avx512_gemm_i8_i32),
            (
                "avx512-vnni",
                avx512 && caps.avx512_vnni,
                i8x86::avx512vnni_gemm_i8_i32,
            ),
        ];
        for &(label, ok, f) in gemms {
            if !ok {
                continue;
            }
            for &k in &[0usize, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 129] {
                let x = i8_vals(2 * k, 71);
                let w = i8_vals(3 * k, 72);
                let mut want = vec![7i32; 6];
                let mut got = want.clone();
                scalar::gemm_i8_i32(&mut want, &x, &w, k);
                // SAFETY: gated on the runtime ISA bits checked above.
                unsafe { f(&mut got, &x, &w, k) };
                assert_eq!(got, want, "{label} gemm form k={k}");
            }
        }
        let lanes: &[(&str, bool, LanesFn)] = &[
            ("sse2", caps.sse2, i8x86::sse2_gemm_i8p_lanes),
            ("avx2", caps.avx2, i8x86::avx2_gemm_i8p_lanes),
            (
                "avx-vnni",
                caps.avx2 && caps.avx_vnni,
                i8x86::avxvnni_gemm_i8p_lanes,
            ),
            ("avx512", avx512, i8x86::avx512_gemm_i8p_lanes),
            (
                "avx512-vnni",
                avx512 && caps.avx512_vnni,
                i8x86::avx512vnni_gemm_i8p_lanes,
            ),
        ];
        for &(label, ok, f) in lanes {
            if !ok {
                continue;
            }
            for &k in &[0usize, 1, 4, 64, 130] {
                for &fan_out in &[0usize, 1, 7, 8, 15, 16, 17, 33] {
                    let x = i8_vals(k, 73);
                    let mut xpairs = Vec::new();
                    super::pack_i8_pairs(&x, &mut xpairs);
                    let wt = i8_vals(xpairs.len() * fan_out * 2, 74)
                        .into_iter()
                        .map(i16::from)
                        .collect::<Vec<_>>();
                    let mut want = vec![7i32; fan_out];
                    let mut got = vec![-7i32; fan_out];
                    scalar::gemm_i8p_lanes(&mut want, &xpairs, &wt, fan_out);
                    // SAFETY: gated on the runtime ISA bits checked above.
                    unsafe { f(&mut got, &xpairs, &wt, fan_out) };
                    assert_eq!(got, want, "{label} lanes form k={k} fan_out={fan_out}");
                }
            }
        }
    }

    /// The vpdpbusd offset-corrected form relies on mod-2³² wrapping:
    /// hammer it with the extreme magnitudes the k ≤ 130_000 bound
    /// allows, where the biased intermediate genuinely wraps i32.
    #[test]
    #[cfg(target_arch = "x86_64")]
    fn vpdpbusd_offset_correction_survives_wrapping() {
        let caps = capabilities();
        if !(KernelBackend::Avx512.is_available() && caps.avx512_vnni) {
            return;
        }
        for &k in &[4096usize, 65_536, 130_000] {
            for (xv, wv) in [(127i8, 127i8), (127, -127), (-127, 127), (-127, -127)] {
                let x = vec![xv; k];
                let w = vec![wv; k];
                let mut want = vec![0i32; 1];
                let mut got = vec![0i32; 1];
                scalar::gemm_i8_i32(&mut want, &x, &w, k);
                // SAFETY: gated on avx512f+bw+vnni runtime detection above.
                unsafe { i8x86::avx512vnni_gemm_i8_i32(&mut got, &x, &w, k) };
                assert_eq!(got, want, "vnni wrap k={k} x={xv} w={wv}");
            }
        }
    }

    #[test]
    fn max_abs_matches_scalar_across_backends() {
        for be in non_scalar() {
            for &n in LENS {
                let x = vals(n, 51);
                let want = scalar::max_abs_f32(&x);
                let got = super::max_abs_f32(be, &x);
                assert_eq!(got.to_bits(), want.to_bits(), "{be} max_abs n={n}");
            }
        }
        assert_eq!(scalar::max_abs_f32(&[]), 0.0);
    }

    #[test]
    fn quantize_i8_matches_scalar_across_backends() {
        // Exact ties (x.5 products), clamp-range extremes, and negative
        // zeros all land in `vals`-derived rows once scaled.
        for be in non_scalar() {
            for &n in LENS {
                let x = vals(n, 61);
                for &inv in &[12.7f32, 0.5, 1.0, 127.0 / 10.0] {
                    let mut want = vec![3i8; n];
                    let mut got = vec![-3i8; n];
                    scalar::quantize_i8(&x, &mut want, inv);
                    super::quantize_i8(be, &x, &mut got, inv);
                    assert_eq!(got, want, "{be} quantize n={n} inv={inv}");
                }
            }
        }
    }

    #[test]
    fn quantize_rounds_half_away_and_clamps() {
        // Hand-picked points: exact ties both signs, the clamp edges, and
        // the largest f32 strictly below 0.5 (the naive +0.5 trick fails
        // there; the fraction-compare formulation must not).
        let below_half = 0.5f32 - 2.0f32.powi(-25);
        let src = [0.5f32, -0.5, 1.5, -2.5, 126.6, -300.0, below_half, 0.0];
        let want: [i8; 8] = [1, -1, 2, -3, 127, -127, 0, 0];
        for &be in available() {
            let mut got = [0i8; 8];
            super::quantize_i8(be, &src, &mut got, 1.0);
            assert_eq!(got, want, "{be} rounding/clamp table");
        }
    }

    #[test]
    fn capabilities_are_consistent_with_dispatch() {
        let caps = capabilities();
        // The dispatched backends must agree with the reported bits.
        assert_eq!(caps.avx2, KernelBackend::Avx2.is_available());
        assert_eq!(caps.sse2, KernelBackend::Sse2.is_available());
        assert_eq!(
            caps.avx512f && caps.avx512bw,
            KernelBackend::Avx512.is_available()
        );
        assert_eq!(caps.neon, KernelBackend::Neon.is_available());
        // VNNI forms imply the matching OS-enabled vector state chain.
        if caps.avx512_vnni {
            assert!(caps.avx512f, "avx512-vnni without avx512f state");
        }
        let summary = caps.summary();
        assert!(!summary.is_empty());
        if caps.avx2 {
            assert!(summary.contains("avx2"), "summary={summary}");
        }
        // Detection is cached and stable.
        assert_eq!(capabilities(), caps);
    }
}
