//! Runtime-dispatched SIMD kernels for the batched controller datapath,
//! bit-identical across backends *by construction*.
//!
//! Every batched kernel in this crate funnels through this module. Three
//! backends implement each kernel: explicit AVX2 and SSE2 `std::arch`
//! intrinsics, and the portable scalar code (the former `matrix.rs` /
//! `mlp.rs` / `activation.rs` loops, moved here verbatim). The backend is
//! chosen once at startup by [`dispatched`] via
//! `is_x86_feature_detected!`, overridable with
//! `RESEMBLE_SIMD={avx2,sse2,scalar}`; tests and benches can pin a
//! backend per thread with [`force`].
//!
//! # Bit-identity by construction
//!
//! The repo's determinism gates compare f32 results bitwise, so the
//! vector paths must produce *byte-identical* output to the scalar
//! fallback — not merely close. That is guaranteed structurally, never
//! by tolerance:
//!
//! - **One accumulator per output element.** Vectorization is only
//!   across independent output elements / batch lanes; no per-element
//!   sum is ever split across vector lanes, so there are no horizontal
//!   reductions and no reassociation.
//! - **Inner dimension in ascending scalar order per lane.** Each lane
//!   walks `k = 0, 1, 2, …` exactly like the scalar loop.
//! - **Non-fused `mul` + `add` only.** No FMA intrinsics anywhere (and
//!   Rust never contracts `a + w * x` on its own), so each lane performs
//!   the same two IEEE-754 rounding steps as the scalar code, in the
//!   same operand order.
//! - **Scalar tails run the identical per-element expressions.** Slice
//!   lengths that are not a multiple of the vector width fall through to
//!   the same scalar statements the fallback uses.
//! - **Compares and selects are bit-exact.** ReLU clamps through
//!   `andnot(x < 0, x)` rather than `max(0, x)`, preserving `-0.0` and
//!   NaN exactly like the scalar `if *x < 0.0 { *x = 0.0 }`; derivative
//!   masks multiply by an `and`-selected `{0.0, 1.0}`, reproducing the
//!   scalar `d * 0.0` / `d * 1.0` including the sign of a `±0.0` result.
//!
//! Consequently AVX2, SSE2, and scalar agree bit-for-bit on every input,
//! which the backend-sweep proptest (`crates/nn/tests/backend_sweep.rs`)
//! and this module's unit tests pin.
//!
//! The `simd-outside-kernel` lint rule keeps all `std::arch` usage inside
//! this file; add new kernels here (see CONTRIBUTING.md).

use std::cell::Cell;
use std::sync::OnceLock;

/// Environment variable that overrides backend selection
/// (`avx2`/`sse2`/`scalar`); unavailable or unknown values fall back to
/// the best detected backend with a warning on stderr.
pub const BACKEND_ENV: &str = "RESEMBLE_SIMD";

/// A kernel implementation the dispatcher can route to.
///
/// Safety invariant: `Avx2`/`Sse2` values are only handed to the kernel
/// wrappers after the corresponding ISA was confirmed present —
/// [`dispatched`] detects before selecting, [`force`] asserts
/// [`KernelBackend::is_available`], and [`available`] lists only detected
/// backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// 8-lane f32 vectors via AVX2 intrinsics.
    Avx2,
    /// 4-lane f32 vectors via SSE2 intrinsics (x86-64 baseline).
    Sse2,
    /// The portable scalar fallback (always available).
    Scalar,
}

impl KernelBackend {
    /// Stable lowercase name, as accepted by [`BACKEND_ENV`] and reported
    /// in benchmark/telemetry output.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Sse2 => "sse2",
            KernelBackend::Scalar => "scalar",
        }
    }

    /// Parse a [`KernelBackend::name`] string (ASCII case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        [
            KernelBackend::Avx2,
            KernelBackend::Sse2,
            KernelBackend::Scalar,
        ]
        .into_iter()
        .find(|b| s.eq_ignore_ascii_case(b.name()))
    }

    /// Whether this backend's ISA is present on the current host.
    pub fn is_available(self) -> bool {
        match self {
            KernelBackend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Sse2 => std::arch::is_x86_feature_detected!("sse2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

impl std::fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Best backend the host supports, ignoring the environment override.
fn detect_best() -> KernelBackend {
    #[cfg(target_arch = "x86_64")]
    {
        if KernelBackend::Avx2.is_available() {
            return KernelBackend::Avx2;
        }
        if KernelBackend::Sse2.is_available() {
            return KernelBackend::Sse2;
        }
    }
    KernelBackend::Scalar
}

/// All backends available on this host, best first (scalar is always
/// last). Use this to sweep backends in tests and benchmarks.
pub fn available() -> &'static [KernelBackend] {
    static LIST: OnceLock<Vec<KernelBackend>> = OnceLock::new();
    LIST.get_or_init(|| {
        [
            KernelBackend::Avx2,
            KernelBackend::Sse2,
            KernelBackend::Scalar,
        ]
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
    })
}

/// The process-wide backend, chosen once on first use: the best detected
/// ISA, unless [`BACKEND_ENV`] requests another *available* backend.
pub fn dispatched() -> KernelBackend {
    static CHOSEN: OnceLock<KernelBackend> = OnceLock::new();
    *CHOSEN.get_or_init(|| {
        let best = detect_best();
        let Ok(req) = std::env::var(BACKEND_ENV) else {
            return best;
        };
        match KernelBackend::parse(&req) {
            Some(b) if b.is_available() => b,
            Some(b) => {
                eprintln!(
                    "resemble-nn: {BACKEND_ENV}={} is not available on this host; using {}",
                    b.name(),
                    best.name()
                );
                best
            }
            None => {
                eprintln!(
                    "resemble-nn: unrecognized {BACKEND_ENV} value {req:?} \
                     (expected avx2|sse2|scalar); using {}",
                    best.name()
                );
                best
            }
        }
    })
}

thread_local! {
    static FORCED: Cell<Option<KernelBackend>> = const { Cell::new(None) };
}

/// The backend the kernels on this thread currently use: the innermost
/// [`force`] override, or else the process-wide [`dispatched`] choice.
/// Never panics.
pub fn active() -> KernelBackend {
    FORCED.with(Cell::get).unwrap_or_else(dispatched)
}

/// Pin `backend` as this thread's active backend until the returned
/// guard drops (restoring the previous state). Panics if the backend is
/// not available on this host — the availability check is what keeps the
/// unsafe ISA dispatch sound.
#[must_use = "the override ends when the guard is dropped"]
pub fn force(backend: KernelBackend) -> BackendGuard {
    assert!(
        backend.is_available(),
        "kernel backend {} is not available on this host",
        backend.name()
    );
    let prev = FORCED.with(|f| f.replace(Some(backend)));
    BackendGuard { prev }
}

/// RAII guard returned by [`force`]; restores the previous per-thread
/// backend override on drop.
pub struct BackendGuard {
    prev: Option<KernelBackend>,
}

impl Drop for BackendGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        FORCED.with(|f| f.set(prev));
    }
}

/// Route one kernel call to the backend's implementation.
///
/// SAFETY: the `Avx2`/`Sse2` arms call `#[target_feature]` functions;
/// this is sound because of the module invariant that those variants only
/// reach the wrappers after runtime detection (see [`KernelBackend`]).
macro_rules! dispatch {
    ($be:expr, $name:ident ( $($arg:expr),* $(,)? )) => {
        match $be {
            // SAFETY: this arm is reached only when runtime detection
            // produced `Avx2` (module invariant — see `KernelBackend`),
            // so the target_feature fn's CPU requirement holds.
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx2 => unsafe { avx2::$name($($arg),*) },
            // SAFETY: `Sse2` is only constructed on x86_64, where SSE2 is
            // architecturally guaranteed.
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Sse2 => unsafe { sse2::$name($($arg),*) },
            _ => scalar::$name($($arg),*),
        }
    };
}

/// Batch-lane dot sweep: `acc[b] += Σ_k wrow[k] · xt[k·tl + b]` with `k`
/// strictly ascending per lane, `tl = acc.len()`.
pub(crate) fn gemm_lanes(be: KernelBackend, acc: &mut [f32], wrow: &[f32], xt: &[f32]) {
    dispatch!(be, gemm_lanes(acc, wrow, xt));
}

/// Output-major matvec against a transposed weight stage: `y[r] = Σ_k
/// wt[k·r_dim + r] · x[k]`, `k` ascending per element — the exact
/// accumulation sequence of `Matrix::matvec_into`, vectorized across the
/// output dimension.
pub(crate) fn matvec_lanes(be: KernelBackend, y: &mut [f32], wt: &[f32], x: &[f32]) {
    dispatch!(be, matvec_lanes(y, wt, x));
}

/// One sample of the transposed matvec `y[c] = Σ_r w[r·cols + c] · x[r]`
/// with the exact-zero `x[r]` skip — the body of
/// `Matrix::matvec_transpose_into`, vectorized across the output columns.
pub(crate) fn matvec_t_sample(be: KernelBackend, y: &mut [f32], w: &[f32], x: &[f32]) {
    dispatch!(be, matvec_t_sample(y, w, x));
}

/// One sample of `dw += alpha · a ⊗ b`, row-major with the exact-zero
/// delta skip — the body of `Matrix::add_outer`.
pub(crate) fn outer_rows_sample(
    be: KernelBackend,
    dw: &mut [f32],
    a_row: &[f32],
    b_row: &[f32],
    alpha: f32,
) {
    dispatch!(be, outer_rows_sample(dw, a_row, b_row, alpha));
}

/// One sample of `dwt += alpha · b ⊗ a` into a *transposed* gradient
/// stage, vectorized across the `a` dimension (see
/// `Matrix::add_outer_batch` for the bit-identity argument).
pub(crate) fn outer_lanes_sample(
    be: KernelBackend,
    dwt: &mut [f32],
    a_row: &[f32],
    b_row: &[f32],
    alpha: f32,
) {
    dispatch!(be, outer_lanes_sample(dwt, a_row, b_row, alpha));
}

/// `out[s·n + i] += bias[i]` for every sample row `s` — the batched bias
/// add of a dense layer.
pub(crate) fn add_bias_rows(be: KernelBackend, out: &mut [f32], bias: &[f32]) {
    dispatch!(be, add_bias_rows(out, bias));
}

/// `acc[i] += Σ_s rows[s·n + i]`, sample-major — the batched
/// bias-gradient column sums, accumulating each element in sample order.
pub(crate) fn sum_rows(be: KernelBackend, acc: &mut [f32], rows: &[f32]) {
    dispatch!(be, sum_rows(acc, rows));
}

/// In-place ReLU over a flat batch: `x = if x < 0.0 { 0.0 } else { x }`,
/// preserving `-0.0` and NaN exactly like the scalar clamp.
pub(crate) fn relu(be: KernelBackend, xs: &mut [f32]) {
    dispatch!(be, relu(xs));
}

/// Batched ReLU chain-rule mask: `d *= if y > 0.0 { 1.0 } else { 0.0 }`.
pub(crate) fn relu_mask(be: KernelBackend, deltas: &mut [f32], ys: &[f32]) {
    dispatch!(be, relu_mask(deltas, ys));
}

/// Batched tanh chain-rule step: `d *= 1.0 - y·y`.
pub(crate) fn tanh_mask(be: KernelBackend, deltas: &mut [f32], ys: &[f32]) {
    dispatch!(be, tanh_mask(deltas, ys));
}

/// Batched sigmoid chain-rule step: `d *= y · (1.0 - y)`.
pub(crate) fn sigmoid_mask(be: KernelBackend, deltas: &mut [f32], ys: &[f32]) {
    dispatch!(be, sigmoid_mask(deltas, ys));
}

/// The portable fallback: the original scalar kernels, moved here
/// verbatim from `matrix.rs`, `mlp.rs`, and `activation.rs`. These are
/// the reference semantics every vector backend must reproduce bitwise.
mod scalar {
    /// `acc[i] += w * xs[i]` over the overlapping prefix.
    ///
    /// Each lane is an independent accumulator, so vectorizing across `i`
    /// never reorders any per-element sum.
    #[inline]
    pub(super) fn axpy(acc: &mut [f32], xs: &[f32], w: f32) {
        for (a, &v) in acc.iter_mut().zip(xs) {
            *a += w * v;
        }
    }

    /// Two fused axpy passes: `acc[i] = (acc[i] + w0·x0[i]) + w1·x1[i]` —
    /// per element, the identical two sequential f32 adds of two [`axpy`]
    /// calls, with half the accumulator load/store traffic.
    #[inline]
    pub(super) fn axpy2(acc: &mut [f32], x0: &[f32], w0: f32, x1: &[f32], w1: f32) {
        for ((a, &v0), &v1) in acc.iter_mut().zip(x0).zip(x1) {
            *a = (*a + w0 * v0) + w1 * v1;
        }
    }

    /// See [`super::gemm_lanes`].
    ///
    /// `#[inline(never)]` is load-bearing here and on the helpers below:
    /// the staging buffers come from a thread-local `RefCell`, where the
    /// optimizer cannot prove disjointness and emits scalar code — and a
    /// plain `#[inline]` boundary is erased by MIR inlining before its
    /// noalias parameter guarantees reach codegen. A real call boundary
    /// keeps them, and the lane loops autovectorize.
    #[inline(never)]
    pub(super) fn gemm_lanes(acc: &mut [f32], wrow: &[f32], xt: &[f32]) {
        let tl = acc.len();
        if tl == 0 {
            return;
        }
        let mut ws = wrow.chunks_exact(2);
        let mut cols = xt.chunks_exact(2 * tl);
        for (wp, cp) in ws.by_ref().zip(cols.by_ref()) {
            let (c0, c1) = cp.split_at(tl);
            axpy2(acc, c0, wp[0], c1, wp[1]);
        }
        for (&w, col) in ws.remainder().iter().zip(cols.remainder().chunks_exact(tl)) {
            axpy(acc, col, w);
        }
    }

    /// See [`super::matvec_lanes`].
    #[inline(never)]
    pub(super) fn matvec_lanes(y: &mut [f32], wt: &[f32], x: &[f32]) {
        let r_dim = y.len();
        if r_dim == 0 {
            return;
        }
        y.fill(0.0);
        let mut xs = x.chunks_exact(2);
        let mut ws = wt.chunks_exact(2 * r_dim);
        for (xp, wp) in xs.by_ref().zip(ws.by_ref()) {
            let (w0, w1) = wp.split_at(r_dim);
            axpy2(y, w0, xp[0], w1, xp[1]);
        }
        for (&xv, wrow) in xs
            .remainder()
            .iter()
            .zip(ws.remainder().chunks_exact(r_dim))
        {
            axpy(y, wrow, xv);
        }
    }

    /// See [`super::matvec_t_sample`] — the loop body of
    /// `Matrix::matvec_transpose_into`, per sample.
    #[inline(never)]
    pub(super) fn matvec_t_sample(y: &mut [f32], w: &[f32], x: &[f32]) {
        y.fill(0.0);
        let cols = y.len();
        if cols == 0 {
            return;
        }
        for (&xv, row) in x.iter().zip(w.chunks_exact(cols)) {
            // lint:allow(float-eq): exact-zero sparsity skip; backprop deltas are assigned 0.0 exactly, and a false negative only costs speed
            if xv == 0.0 {
                continue;
            }
            for (yc, wv) in y.iter_mut().zip(row) {
                *yc += wv * xv;
            }
        }
    }

    /// See [`super::outer_rows_sample`].
    #[inline(never)]
    pub(super) fn outer_rows_sample(dw: &mut [f32], a_row: &[f32], b_row: &[f32], alpha: f32) {
        let cols = b_row.len();
        if cols == 0 {
            return;
        }
        for (&av, row) in a_row.iter().zip(dw.chunks_exact_mut(cols)) {
            // lint:allow(float-eq): exact-zero sparsity skip; ReLU masks and single-action TD errors assign 0.0 exactly, and a false negative only costs speed
            if av == 0.0 {
                continue;
            }
            axpy(row, b_row, alpha * av);
        }
    }

    /// See [`super::outer_lanes_sample`]. Bit-identity of the transposed
    /// store layout and the moved sparsity skip: element `(r, c)`
    /// receives the identical f32 add sequence as the row-major form —
    /// one contribution per sample in sample order; where it is *stored*
    /// during accumulation does not change rounding, and skipped/added
    /// `±0.0` products of finite operands satisfy `x + ±0.0 == x` bitwise
    /// for every `x` an accumulation starting at `+0.0` can reach.
    #[inline(never)]
    pub(super) fn outer_lanes_sample(dwt: &mut [f32], a_row: &[f32], b_row: &[f32], alpha: f32) {
        let rows = a_row.len();
        if rows == 0 {
            return;
        }
        for (&bv, drow) in b_row.iter().zip(dwt.chunks_exact_mut(rows)) {
            // lint:allow(float-eq): exact-zero sparsity skip, proven bit-identical above
            if bv == 0.0 {
                continue;
            }
            axpy(drow, a_row, alpha * bv);
        }
    }

    /// See [`super::add_bias_rows`].
    #[inline(never)]
    pub(super) fn add_bias_rows(out: &mut [f32], bias: &[f32]) {
        if bias.is_empty() {
            return;
        }
        for row in out.chunks_exact_mut(bias.len()) {
            for (o, &bv) in row.iter_mut().zip(bias) {
                *o += bv;
            }
        }
    }

    /// See [`super::sum_rows`].
    #[inline(never)]
    pub(super) fn sum_rows(acc: &mut [f32], rows: &[f32]) {
        if acc.is_empty() {
            return;
        }
        for row in rows.chunks_exact(acc.len()) {
            for (g, &d) in acc.iter_mut().zip(row) {
                *g += d;
            }
        }
    }

    /// See [`super::relu`] — the `Activation::Relu` clamp over a flat
    /// batch.
    #[inline(never)]
    pub(super) fn relu(xs: &mut [f32]) {
        for x in xs {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
    }

    /// See [`super::relu_mask`]. The select-then-multiply form compiles
    /// branchless, and `d * 0.0 = ±0.0` keeps `d`'s sign exactly like
    /// the per-sample chain rule.
    #[inline(never)]
    pub(super) fn relu_mask(deltas: &mut [f32], ys: &[f32]) {
        for (d, &y) in deltas.iter_mut().zip(ys) {
            *d *= if y > 0.0 { 1.0 } else { 0.0 };
        }
    }

    /// See [`super::tanh_mask`].
    #[inline(never)]
    pub(super) fn tanh_mask(deltas: &mut [f32], ys: &[f32]) {
        for (d, &y) in deltas.iter_mut().zip(ys) {
            *d *= 1.0 - y * y;
        }
    }

    /// See [`super::sigmoid_mask`].
    #[inline(never)]
    pub(super) fn sigmoid_mask(deltas: &mut [f32], ys: &[f32]) {
        for (d, &y) in deltas.iter_mut().zip(ys) {
            *d *= y * (1.0 - y);
        }
    }
}

/// AVX `_mm256_cmp_ps` takes its predicate as a const generic, unlike the
/// fixed-predicate SSE compare intrinsics; these wrappers give both ISAs
/// the same two-argument shape for the kernel-set macro. `_OQ` (ordered,
/// quiet) predicates match scalar `<` / `>`: false on NaN.
#[cfg(target_arch = "x86_64")]
mod cmp256 {
    use core::arch::x86_64::*;

    // SAFETY: target_feature-only unsafety — called exclusively from the
    // avx2 kernel set, which itself runs only after runtime detection.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gt(a: __m256, b: __m256) -> __m256 {
        _mm256_cmp_ps::<_CMP_GT_OQ>(a, b)
    }

    // SAFETY: target_feature-only unsafety — called exclusively from the
    // avx2 kernel set, which itself runs only after runtime detection.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lt(a: __m256, b: __m256) -> __m256 {
        _mm256_cmp_ps::<_CMP_LT_OQ>(a, b)
    }
}

/// One vector backend. Each kernel mirrors its scalar counterpart
/// statement for statement: the vector body processes `$w`-wide groups of
/// *independent lanes* with non-fused `$mul` + `$add`, and the remainder
/// falls through to the identical scalar expressions, so results are
/// byte-identical to `mod scalar` (see the module docs for the full
/// argument).
///
/// SAFETY: every function is `#[target_feature(enable = $feature)]` and
/// only reachable through `dispatch!`, which routes to this module solely
/// for backend values that passed runtime detection. Raw pointer
/// arithmetic stays within `i + $w <= len` bounds established on the
/// zipped slice prefix.
#[cfg(target_arch = "x86_64")]
macro_rules! x86_kernel_set {
    ($modname:ident, $feature:literal, $w:literal,
     $loadu:ident, $storeu:ident, $set1:ident, $add:ident, $mul:ident, $sub:ident,
     $and:ident, $andnot:ident, $cmpgt:path, $cmplt:path) => {
        mod $modname {
            #[allow(unused_imports)]
            use core::arch::x86_64::*;

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn axpy(acc: &mut [f32], xs: &[f32], w: f32) {
                let n = acc.len().min(xs.len());
                let wv = $set1(w);
                let mut i = 0usize;
                while i + $w <= n {
                    let x = $loadu(xs.as_ptr().add(i));
                    let a = $loadu(acc.as_ptr().add(i));
                    $storeu(acc.as_mut_ptr().add(i), $add(a, $mul(wv, x)));
                    i += $w;
                }
                for (a, &v) in acc[i..n].iter_mut().zip(&xs[i..n]) {
                    *a += w * v;
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn axpy2(acc: &mut [f32], x0: &[f32], w0: f32, x1: &[f32], w1: f32) {
                let n = acc.len().min(x0.len()).min(x1.len());
                let w0v = $set1(w0);
                let w1v = $set1(w1);
                let mut i = 0usize;
                while i + $w <= n {
                    let a = $loadu(acc.as_ptr().add(i));
                    let v0 = $loadu(x0.as_ptr().add(i));
                    let v1 = $loadu(x1.as_ptr().add(i));
                    $storeu(
                        acc.as_mut_ptr().add(i),
                        $add($add(a, $mul(w0v, v0)), $mul(w1v, v1)),
                    );
                    i += $w;
                }
                for ((a, &v0), &v1) in acc[i..n].iter_mut().zip(&x0[i..n]).zip(&x1[i..n]) {
                    *a = (*a + w0 * v0) + w1 * v1;
                }
            }

            /// `y[i] += ws[i] · x` — weight vector times splatted scalar;
            /// operand order matches `matvec_transpose_into`'s
            /// `*yc += wv * xv`.
            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn axpy_wx(y: &mut [f32], ws: &[f32], x: f32) {
                let n = y.len().min(ws.len());
                let xv = $set1(x);
                let mut i = 0usize;
                while i + $w <= n {
                    let wv = $loadu(ws.as_ptr().add(i));
                    let a = $loadu(y.as_ptr().add(i));
                    $storeu(y.as_mut_ptr().add(i), $add(a, $mul(wv, xv)));
                    i += $w;
                }
                for (a, &wv) in y[i..n].iter_mut().zip(&ws[i..n]) {
                    *a += wv * x;
                }
            }

            /// `acc[i] += xs[i]` over the overlapping prefix.
            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn add_assign(acc: &mut [f32], xs: &[f32]) {
                let n = acc.len().min(xs.len());
                let mut i = 0usize;
                while i + $w <= n {
                    let a = $loadu(acc.as_ptr().add(i));
                    let x = $loadu(xs.as_ptr().add(i));
                    $storeu(acc.as_mut_ptr().add(i), $add(a, x));
                    i += $w;
                }
                for (a, &v) in acc[i..n].iter_mut().zip(&xs[i..n]) {
                    *a += v;
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn gemm_lanes(acc: &mut [f32], wrow: &[f32], xt: &[f32]) {
                let tl = acc.len();
                if tl == 0 {
                    return;
                }
                let mut ws = wrow.chunks_exact(2);
                let mut cols = xt.chunks_exact(2 * tl);
                for (wp, cp) in ws.by_ref().zip(cols.by_ref()) {
                    let (c0, c1) = cp.split_at(tl);
                    axpy2(acc, c0, wp[0], c1, wp[1]);
                }
                for (&w, col) in ws.remainder().iter().zip(cols.remainder().chunks_exact(tl)) {
                    axpy(acc, col, w);
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn matvec_lanes(y: &mut [f32], wt: &[f32], x: &[f32]) {
                let r_dim = y.len();
                if r_dim == 0 {
                    return;
                }
                y.fill(0.0);
                let mut xs = x.chunks_exact(2);
                let mut ws = wt.chunks_exact(2 * r_dim);
                for (xp, wp) in xs.by_ref().zip(ws.by_ref()) {
                    let (w0, w1) = wp.split_at(r_dim);
                    axpy2(y, w0, xp[0], w1, xp[1]);
                }
                for (&xv, wrow) in xs
                    .remainder()
                    .iter()
                    .zip(ws.remainder().chunks_exact(r_dim))
                {
                    axpy(y, wrow, xv);
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn matvec_t_sample(y: &mut [f32], w: &[f32], x: &[f32]) {
                y.fill(0.0);
                let cols = y.len();
                if cols == 0 {
                    return;
                }
                for (&xv, row) in x.iter().zip(w.chunks_exact(cols)) {
                    // lint:allow(float-eq): exact-zero sparsity skip, identical to the scalar kernel
                    if xv == 0.0 {
                        continue;
                    }
                    axpy_wx(y, row, xv);
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn outer_rows_sample(
                dw: &mut [f32],
                a_row: &[f32],
                b_row: &[f32],
                alpha: f32,
            ) {
                let cols = b_row.len();
                if cols == 0 {
                    return;
                }
                for (&av, row) in a_row.iter().zip(dw.chunks_exact_mut(cols)) {
                    // lint:allow(float-eq): exact-zero sparsity skip, identical to the scalar kernel
                    if av == 0.0 {
                        continue;
                    }
                    axpy(row, b_row, alpha * av);
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn outer_lanes_sample(
                dwt: &mut [f32],
                a_row: &[f32],
                b_row: &[f32],
                alpha: f32,
            ) {
                let rows = a_row.len();
                if rows == 0 {
                    return;
                }
                for (&bv, drow) in b_row.iter().zip(dwt.chunks_exact_mut(rows)) {
                    // lint:allow(float-eq): exact-zero sparsity skip, identical to the scalar kernel
                    if bv == 0.0 {
                        continue;
                    }
                    axpy(drow, a_row, alpha * bv);
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn add_bias_rows(out: &mut [f32], bias: &[f32]) {
                if bias.is_empty() {
                    return;
                }
                for row in out.chunks_exact_mut(bias.len()) {
                    add_assign(row, bias);
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn sum_rows(acc: &mut [f32], rows: &[f32]) {
                if acc.is_empty() {
                    return;
                }
                for row in rows.chunks_exact(acc.len()) {
                    add_assign(acc, row);
                }
            }

            /// `andnot(x < 0, x)` zeroes exactly the lanes the scalar
            /// branch zeroes: `-0.0` is not `< 0.0` (kept, like scalar)
            /// and NaN compares false (kept bit-exactly, unlike `max`).
            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn relu(xs: &mut [f32]) {
                let n = xs.len();
                let zero = $set1(0.0);
                let mut i = 0usize;
                while i + $w <= n {
                    let x = $loadu(xs.as_ptr().add(i));
                    let neg = $cmplt(x, zero);
                    $storeu(xs.as_mut_ptr().add(i), $andnot(neg, x));
                    i += $w;
                }
                for x in &mut xs[i..] {
                    if *x < 0.0 {
                        *x = 0.0;
                    }
                }
            }

            /// Multiply by an `and`-selected `{0.0, 1.0}` mask — the same
            /// `d * 0.0` / `d * 1.0` the scalar branchless select
            /// performs, so `±0.0` signs survive identically.
            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn relu_mask(deltas: &mut [f32], ys: &[f32]) {
                let n = deltas.len().min(ys.len());
                let zero = $set1(0.0);
                let one = $set1(1.0);
                let mut i = 0usize;
                while i + $w <= n {
                    let d = $loadu(deltas.as_ptr().add(i));
                    let y = $loadu(ys.as_ptr().add(i));
                    let m = $and($cmpgt(y, zero), one);
                    $storeu(deltas.as_mut_ptr().add(i), $mul(d, m));
                    i += $w;
                }
                for (d, &y) in deltas[i..n].iter_mut().zip(&ys[i..n]) {
                    *d *= if y > 0.0 { 1.0 } else { 0.0 };
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn tanh_mask(deltas: &mut [f32], ys: &[f32]) {
                let n = deltas.len().min(ys.len());
                let one = $set1(1.0);
                let mut i = 0usize;
                while i + $w <= n {
                    let d = $loadu(deltas.as_ptr().add(i));
                    let y = $loadu(ys.as_ptr().add(i));
                    $storeu(deltas.as_mut_ptr().add(i), $mul(d, $sub(one, $mul(y, y))));
                    i += $w;
                }
                for (d, &y) in deltas[i..n].iter_mut().zip(&ys[i..n]) {
                    *d *= 1.0 - y * y;
                }
            }

            // SAFETY: target_feature-only unsafety — reachable solely via
            // `dispatch!` after runtime detection of `$feature`; pointer
            // offsets stay below the `i + $w <= n` slice bound.
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn sigmoid_mask(deltas: &mut [f32], ys: &[f32]) {
                let n = deltas.len().min(ys.len());
                let one = $set1(1.0);
                let mut i = 0usize;
                while i + $w <= n {
                    let d = $loadu(deltas.as_ptr().add(i));
                    let y = $loadu(ys.as_ptr().add(i));
                    $storeu(deltas.as_mut_ptr().add(i), $mul(d, $mul(y, $sub(one, y))));
                    i += $w;
                }
                for (d, &y) in deltas[i..n].iter_mut().zip(&ys[i..n]) {
                    *d *= y * (1.0 - y);
                }
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
x86_kernel_set!(
    avx2,
    "avx2",
    8,
    _mm256_loadu_ps,
    _mm256_storeu_ps,
    _mm256_set1_ps,
    _mm256_add_ps,
    _mm256_mul_ps,
    _mm256_sub_ps,
    _mm256_and_ps,
    _mm256_andnot_ps,
    super::cmp256::gt,
    super::cmp256::lt
);

#[cfg(target_arch = "x86_64")]
x86_kernel_set!(
    sse2,
    "sse2",
    4,
    _mm_loadu_ps,
    _mm_storeu_ps,
    _mm_set1_ps,
    _mm_add_ps,
    _mm_mul_ps,
    _mm_sub_ps,
    _mm_and_ps,
    _mm_andnot_ps,
    _mm_cmpgt_ps,
    _mm_cmplt_ps
);

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudorandom values with exact zeros and negative
    /// zeros sprinkled in (the cases the sparsity skips and sign rules
    /// care about).
    fn vals(n: usize, seed: u32) -> Vec<f32> {
        let mut s = seed.wrapping_mul(2654435761).max(3);
        (0..n)
            .map(|i| {
                s ^= s << 13;
                s ^= s >> 17;
                s ^= s << 5;
                if i % 7 == 3 {
                    0.0
                } else if i % 11 == 5 {
                    -0.0
                } else {
                    (s % 2000) as f32 / 100.0 - 10.0
                }
            })
            .collect()
    }

    fn bits(xs: &[f32]) -> Vec<u32> {
        xs.iter().map(|v| v.to_bits()).collect()
    }

    /// Lengths that exercise full vectors and every tail size for both
    /// 4- and 8-wide backends.
    const LENS: &[usize] = &[0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 67];

    fn non_scalar() -> impl Iterator<Item = KernelBackend> {
        available()
            .iter()
            .copied()
            .filter(|&b| b != KernelBackend::Scalar)
    }

    #[test]
    fn name_parse_roundtrip() {
        for b in [
            KernelBackend::Avx2,
            KernelBackend::Sse2,
            KernelBackend::Scalar,
        ] {
            assert_eq!(KernelBackend::parse(b.name()), Some(b));
            assert_eq!(KernelBackend::parse(&b.name().to_uppercase()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
        assert_eq!(KernelBackend::parse("avx512"), None);
    }

    #[test]
    fn available_ends_with_scalar_and_contains_dispatched() {
        let list = available();
        assert_eq!(list.last(), Some(&KernelBackend::Scalar));
        assert!(list.contains(&dispatched()));
        assert!(list.iter().all(|b| b.is_available()));
    }

    #[test]
    fn force_guard_nests_and_restores() {
        assert_eq!(active(), dispatched());
        {
            let _outer = force(KernelBackend::Scalar);
            assert_eq!(active(), KernelBackend::Scalar);
            {
                let best = available()[0];
                let _inner = force(best);
                assert_eq!(active(), best);
            }
            assert_eq!(active(), KernelBackend::Scalar);
        }
        assert_eq!(active(), dispatched());
    }

    #[test]
    fn gemm_and_matvec_lanes_match_scalar_bitwise() {
        for be in non_scalar() {
            for &tl in LENS {
                for k_dim in [0usize, 1, 2, 3, 5, 8] {
                    let wrow = vals(k_dim, 1);
                    let xt = vals(k_dim * tl, 2);
                    let mut want = vals(tl, 3);
                    let mut got = want.clone();
                    scalar::gemm_lanes(&mut want, &wrow, &xt);
                    super::gemm_lanes(be, &mut got, &wrow, &xt);
                    assert_eq!(bits(&got), bits(&want), "{be} gemm tl={tl} k={k_dim}");

                    let wt = vals(k_dim * tl, 4);
                    let x = vals(k_dim, 5);
                    let mut want = vec![9.0f32; tl];
                    let mut got = want.clone();
                    scalar::matvec_lanes(&mut want, &wt, &x);
                    super::matvec_lanes(be, &mut got, &wt, &x);
                    assert_eq!(bits(&got), bits(&want), "{be} matvec tl={tl} k={k_dim}");
                }
            }
        }
    }

    #[test]
    fn matvec_t_and_outer_samples_match_scalar_bitwise() {
        for be in non_scalar() {
            for &cols in LENS {
                for rows in [0usize, 1, 2, 3, 5, 8] {
                    let w = vals(rows * cols, 6);
                    let x = vals(rows, 7); // includes exact zeros → skip path
                    let mut want = vec![1.0f32; cols];
                    let mut got = want.clone();
                    scalar::matvec_t_sample(&mut want, &w, &x);
                    super::matvec_t_sample(be, &mut got, &w, &x);
                    assert_eq!(bits(&got), bits(&want), "{be} matvec_t {rows}x{cols}");

                    let a = vals(rows, 8);
                    let b = vals(cols, 9);
                    let mut want = vals(rows * cols, 10);
                    let mut got = want.clone();
                    scalar::outer_rows_sample(&mut want, &a, &b, 0.37);
                    super::outer_rows_sample(be, &mut got, &a, &b, 0.37);
                    assert_eq!(bits(&got), bits(&want), "{be} outer_rows {rows}x{cols}");

                    let mut want = vals(rows * cols, 11);
                    let mut got = want.clone();
                    scalar::outer_lanes_sample(&mut want, &a, &b, -1.1);
                    super::outer_lanes_sample(be, &mut got, &a, &b, -1.1);
                    assert_eq!(bits(&got), bits(&want), "{be} outer_lanes {rows}x{cols}");
                }
            }
        }
    }

    #[test]
    fn bias_and_row_sums_match_scalar_bitwise() {
        for be in non_scalar() {
            for &n in LENS {
                for samples in [0usize, 1, 3, 4] {
                    let bias = vals(n, 12);
                    let mut want = vals(samples * n, 13);
                    let mut got = want.clone();
                    scalar::add_bias_rows(&mut want, &bias);
                    super::add_bias_rows(be, &mut got, &bias);
                    assert_eq!(bits(&got), bits(&want), "{be} bias n={n} s={samples}");

                    let rows = vals(samples * n, 14);
                    let mut want = vals(n, 15);
                    let mut got = want.clone();
                    scalar::sum_rows(&mut want, &rows);
                    super::sum_rows(be, &mut got, &rows);
                    assert_eq!(bits(&got), bits(&want), "{be} sums n={n} s={samples}");
                }
            }
        }
    }

    #[test]
    fn activations_match_scalar_bitwise_including_signed_zero_and_nan() {
        for be in non_scalar() {
            for &n in LENS {
                let mut xs = vals(n, 16);
                if n > 2 {
                    xs[1] = f32::from_bits(0x7fc0_1234); // NaN with payload
                }
                let mut want = xs.clone();
                let mut got = xs;
                scalar::relu(&mut want);
                super::relu(be, &mut got);
                assert_eq!(bits(&got), bits(&want), "{be} relu n={n}");

                let ys = vals(n, 17);
                let mut want = vals(n, 18);
                let mut got = want.clone();
                scalar::relu_mask(&mut want, &ys);
                super::relu_mask(be, &mut got, &ys);
                assert_eq!(bits(&got), bits(&want), "{be} relu_mask n={n}");

                let mut want = vals(n, 19);
                let mut got = want.clone();
                scalar::tanh_mask(&mut want, &ys);
                super::tanh_mask(be, &mut got, &ys);
                assert_eq!(bits(&got), bits(&want), "{be} tanh_mask n={n}");

                let mut want = vals(n, 20);
                let mut got = want.clone();
                scalar::sigmoid_mask(&mut want, &ys);
                super::sigmoid_mask(be, &mut got, &ys);
                assert_eq!(bits(&got), bits(&want), "{be} sigmoid_mask n={n}");
            }
        }
    }

    #[test]
    fn relu_keeps_negative_zero_and_clamps_to_positive_zero() {
        for &be in available() {
            let mut xs = vec![-0.0f32, -3.5, 0.0, 2.0, -1e-30, f32::NAN];
            super::relu(be, &mut xs);
            assert_eq!(xs[0].to_bits(), (-0.0f32).to_bits(), "{be}: -0.0 kept");
            assert_eq!(xs[1].to_bits(), 0.0f32.to_bits(), "{be}: clamp is +0.0");
            assert_eq!(xs[4].to_bits(), 0.0f32.to_bits(), "{be}: tiny negative");
            assert!(xs[5].is_nan(), "{be}: NaN preserved");
        }
    }
}
