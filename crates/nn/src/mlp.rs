//! Shallow multilayer perceptron with manual backprop.
//!
//! The paper's ensemble controller is a three-layer MLP (input → one hidden
//! ReLU layer of H=100 → linear Q-value output). This module implements a
//! general small MLP with: allocation-free forward via [`Scratch`],
//! gradient accumulation into a [`GradBuffer`] (so a batch is averaged
//! before one optimizer step, Eq. 9–11), and flat parameter import/export
//! used by the DQN target-network synchronization.

use crate::activation::Activation;
use crate::matrix::Matrix;
use crate::optim::Optimizer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One fully-connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Dense {
    w: Matrix,
    b: Vec<f32>,
    act: Activation,
}

/// A feedforward MLP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    sizes: Vec<usize>,
}

/// Reusable forward-pass activations: `acts[0]` is the input, `acts[i]` the
/// output of layer `i-1`.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    acts: Vec<Vec<f32>>,
    /// backprop delta buffers, one per layer output
    deltas: Vec<Vec<f32>>,
}

/// Accumulated parameter gradients matching an [`Mlp`]'s shape.
#[derive(Debug, Clone)]
pub struct GradBuffer {
    dw: Vec<Matrix>,
    db: Vec<Vec<f32>>,
    /// Number of accumulated samples (for averaging).
    pub samples: usize,
}

impl Mlp {
    /// Build an MLP with the given layer sizes, e.g. `&[4, 100, 5]`.
    ///
    /// Hidden layers use `hidden_act`; the output layer is linear
    /// (Q-values). Weights use Xavier-uniform init from `seed`.
    pub fn new(sizes: &[usize], hidden_act: Activation, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let (fan_in, fan_out) = (sizes[i], sizes[i + 1]);
            let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
            let w = Matrix::from_fn(fan_out, fan_in, |_, _| rng.gen_range(-bound..bound));
            let act = if i + 2 == sizes.len() {
                Activation::Identity
            } else {
                hidden_act
            };
            layers.push(Dense {
                w,
                b: vec![0.0; fan_out],
                act,
            });
        }
        Self {
            layers,
            sizes: sizes.to_vec(),
        }
    }

    /// Layer sizes (input, hidden..., output).
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.sizes[0]
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        *self.sizes.last().unwrap()
    }

    /// Total number of parameters (weights + biases), the paper's
    /// `SH + HA + H + A` for a single hidden layer (Table IV).
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Prepare (or resize) a scratch buffer for this network.
    pub fn make_scratch(&self) -> Scratch {
        Scratch {
            acts: self.sizes.iter().map(|&s| vec![0.0; s]).collect(),
            deltas: self.sizes[1..].iter().map(|&s| vec![0.0; s]).collect(),
        }
    }

    /// Prepare a gradient buffer matching this network.
    pub fn make_grad_buffer(&self) -> GradBuffer {
        GradBuffer {
            dw: self
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.w.rows(), l.w.cols()))
                .collect(),
            db: self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
            samples: 0,
        }
    }

    /// Allocation-free forward pass; returns the output activations slice.
    pub fn forward<'s>(&self, x: &[f32], scratch: &'s mut Scratch) -> &'s [f32] {
        assert_eq!(x.len(), self.sizes[0], "input dimension mismatch");
        if scratch.acts.len() != self.sizes.len() {
            *scratch = self.make_scratch();
        }
        scratch.acts[0].copy_from_slice(x);
        for (i, layer) in self.layers.iter().enumerate() {
            let (inp, out) = {
                let (a, b) = scratch.acts.split_at_mut(i + 1);
                (&a[i], &mut b[0])
            };
            layer.w.matvec_into(inp, out);
            for (o, bias) in out.iter_mut().zip(&layer.b) {
                *o += bias;
            }
            layer.act.apply(out);
        }
        scratch.acts.last().unwrap()
    }

    /// Convenience allocating forward pass.
    pub fn predict(&self, x: &[f32]) -> Vec<f32> {
        let mut s = self.make_scratch();
        self.forward(x, &mut s).to_vec()
    }

    /// Index of the maximum output (argmax action), ties broken low.
    pub fn argmax(&self, x: &[f32], scratch: &mut Scratch) -> usize {
        let out = self.forward(x, scratch);
        let mut best = 0;
        for i in 1..out.len() {
            if out[i] > out[best] {
                best = i;
            }
        }
        best
    }

    /// Backpropagate `out_grad` = dL/d(output) for the forward pass whose
    /// activations are in `scratch`, accumulating parameter gradients.
    pub fn backward(&self, scratch: &mut Scratch, out_grad: &[f32], grads: &mut GradBuffer) {
        assert_eq!(out_grad.len(), self.output_dim());
        let n_layers = self.layers.len();
        // delta for output layer: dL/dy * f'(y)
        {
            let y = &scratch.acts[n_layers];
            let delta = &mut scratch.deltas[n_layers - 1];
            let act = self.layers[n_layers - 1].act;
            for i in 0..delta.len() {
                delta[i] = out_grad[i] * act.derivative_from_output(y[i]);
            }
        }
        for l in (0..n_layers).rev() {
            // Accumulate dW += delta ⊗ input, db += delta.
            let (delta, input) = (&scratch.deltas[l], &scratch.acts[l]);
            grads.dw[l].add_outer(1.0, delta, input);
            for (g, d) in grads.db[l].iter_mut().zip(delta) {
                *g += d;
            }
            if l > 0 {
                // delta_{l-1} = (Wᵀ delta) * f'(act_{l-1})
                let (lower, upper) = scratch.deltas.split_at_mut(l);
                let prev_delta = &mut lower[l - 1];
                self.layers[l]
                    .w
                    .matvec_transpose_into(&upper[0], prev_delta);
                let act = self.layers[l - 1].act;
                let y = &scratch.acts[l];
                debug_assert_eq!(y.len(), scratch.acts[l].len());
                for (d, &yv) in prev_delta.iter_mut().zip(scratch.acts[l].iter()) {
                    *d *= act.derivative_from_output(yv);
                }
            }
        }
        grads.samples += 1;
    }

    /// Apply the accumulated (averaged) gradients with the optimizer, then
    /// clear the buffer.
    pub fn apply_grads(&mut self, grads: &mut GradBuffer, opt: &mut dyn Optimizer) {
        if grads.samples == 0 {
            return;
        }
        let scale = 1.0 / grads.samples as f32;
        let n = self.param_count();
        let mut params = Vec::with_capacity(n);
        let mut flat_grads = Vec::with_capacity(n);
        for (l, (dw, db)) in self.layers.iter().zip(grads.dw.iter().zip(&grads.db)) {
            params.extend_from_slice(l.w.as_slice());
            params.extend_from_slice(&l.b);
            flat_grads.extend(dw.as_slice().iter().map(|g| g * scale));
            flat_grads.extend(db.iter().map(|g| g * scale));
        }
        opt.step(&mut params, &flat_grads);
        self.load_flat(&params);
        grads.clear();
    }

    /// Export all parameters as one flat vector (weights then bias, per layer).
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for l in &self.layers {
            out.extend_from_slice(l.w.as_slice());
            out.extend_from_slice(&l.b);
        }
        out
    }

    /// Import parameters exported by [`Mlp::flat_params`].
    pub fn load_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_count(), "parameter count mismatch");
        let mut off = 0;
        for l in &mut self.layers {
            let wlen = l.w.len();
            l.w.as_mut_slice().copy_from_slice(&flat[off..off + wlen]);
            off += wlen;
            let blen = l.b.len();
            l.b.copy_from_slice(&flat[off..off + blen]);
            off += blen;
        }
    }

    /// Copy another network's parameters into this one (target-net sync).
    pub fn copy_params_from(&mut self, other: &Mlp) {
        assert_eq!(self.sizes, other.sizes, "network shapes differ");
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.w = b.w.clone();
            a.b.clone_from(&b.b);
        }
    }
}

impl GradBuffer {
    /// Zero the accumulated gradients.
    pub fn clear(&mut self) {
        for m in &mut self.dw {
            m.clear();
        }
        for b in &mut self.db {
            b.fill(0.0);
        }
        self.samples = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Sgd};

    #[test]
    fn forward_shapes_and_determinism() {
        let net = Mlp::new(&[4, 10, 5], Activation::Relu, 1);
        assert_eq!(net.param_count(), 4 * 10 + 10 * 5 + 10 + 5);
        let a = net.predict(&[0.1, 0.2, 0.3, 0.4]);
        let b = net.predict(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let net2 = Mlp::new(&[4, 10, 5], Activation::Relu, 1);
        assert_eq!(net.predict(&[1.0; 4]), net2.predict(&[1.0; 4]));
    }

    #[test]
    fn gradient_check_finite_difference() {
        // Loss L = 0.5 * sum((y - t)^2); out_grad = y - t.
        let mut net = Mlp::new(&[3, 6, 2], Activation::Tanh, 7);
        let x = [0.3f32, -0.7, 0.5];
        let t = [0.2f32, -0.1];
        let mut scratch = net.make_scratch();
        let mut grads = net.make_grad_buffer();
        let y = net.forward(&x, &mut scratch).to_vec();
        let out_grad: Vec<f32> = y.iter().zip(&t).map(|(a, b)| a - b).collect();
        net.backward(&mut scratch, &out_grad, &mut grads);
        // Flatten analytic grads in the same order as flat_params.
        let mut analytic = Vec::new();
        for (dw, db) in grads.dw.iter().zip(&grads.db) {
            analytic.extend_from_slice(dw.as_slice());
            analytic.extend_from_slice(db);
        }
        let loss = |net: &Mlp| -> f32 {
            let y = net.predict(&x);
            0.5 * y
                .iter()
                .zip(&t)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        let params = net.flat_params();
        let eps = 1e-3f32;
        for i in (0..params.len()).step_by(7) {
            let mut p = params.clone();
            p[i] += eps;
            net.load_flat(&p);
            let lp = loss(&net);
            p[i] -= 2.0 * eps;
            net.load_flat(&p);
            let lm = loss(&net);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic[i]).abs() < 2e-2 * (1.0 + fd.abs()),
                "param {i}: fd={fd} analytic={}",
                analytic[i]
            );
        }
        net.load_flat(&params);
    }

    #[test]
    fn learns_xor() {
        let mut net = Mlp::new(&[2, 8, 1], Activation::Tanh, 3);
        let mut opt = Adam::new(0.02);
        let data = [
            ([0.0f32, 0.0], 0.0f32),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        let mut scratch = net.make_scratch();
        let mut grads = net.make_grad_buffer();
        for _ in 0..2000 {
            for (x, t) in &data {
                let y = net.forward(x, &mut scratch)[0];
                net.backward(&mut scratch, &[y - t], &mut grads);
            }
            net.apply_grads(&mut grads, &mut opt);
        }
        for (x, t) in &data {
            let y = net.predict(x)[0];
            assert!((y - t).abs() < 0.2, "xor({x:?}) = {y}, want {t}");
        }
    }

    #[test]
    fn apply_grads_averages_over_batch() {
        // Two identical samples must give the same step as one.
        let net0 = Mlp::new(&[2, 3, 1], Activation::Relu, 5);
        let x = [0.5f32, -0.5];
        let run = |reps: usize| -> Vec<f32> {
            let mut net = net0.clone();
            let mut scratch = net.make_scratch();
            let mut grads = net.make_grad_buffer();
            for _ in 0..reps {
                let y = net.forward(&x, &mut scratch)[0];
                net.backward(&mut scratch, &[y - 1.0], &mut grads);
            }
            net.apply_grads(&mut grads, &mut Sgd::new(0.1));
            net.flat_params()
        };
        let one = run(1);
        let four = run(4);
        for (a, b) in one.iter().zip(&four) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn flat_roundtrip_and_copy() {
        let net = Mlp::new(&[3, 4, 2], Activation::Relu, 9);
        let flat = net.flat_params();
        let mut other = Mlp::new(&[3, 4, 2], Activation::Relu, 10);
        assert_ne!(net.predict(&[1.0; 3]), other.predict(&[1.0; 3]));
        other.load_flat(&flat);
        assert_eq!(net.predict(&[1.0; 3]), other.predict(&[1.0; 3]));
        let mut third = Mlp::new(&[3, 4, 2], Activation::Relu, 11);
        third.copy_params_from(&net);
        assert_eq!(net.predict(&[0.5; 3]), third.predict(&[0.5; 3]));
    }

    #[test]
    fn argmax_selects_best() {
        let net = Mlp::new(&[2, 4, 3], Activation::Relu, 2);
        let mut s = net.make_scratch();
        let x = [0.3, 0.8];
        let out = net.predict(&x);
        let a = net.argmax(&x, &mut s);
        assert!(out.iter().all(|&v| v <= out[a]));
    }

    #[test]
    fn paper_table_iv_param_count() {
        // Table IV: S=4, H=100, A=5 → SH + HA + H + A = 1005 ≈ "1.05K".
        let net = Mlp::new(&[4, 100, 5], Activation::Relu, 0);
        assert_eq!(net.param_count(), 4 * 100 + 100 * 5 + 100 + 5);
        assert_eq!(net.param_count(), 1005);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn forward_checks_input_dim() {
        let net = Mlp::new(&[2, 2], Activation::Relu, 0);
        let mut s = net.make_scratch();
        let _ = net.forward(&[1.0; 3], &mut s);
    }
}
