//! Shallow multilayer perceptron with manual backprop.
//!
//! The paper's ensemble controller is a three-layer MLP (input → one hidden
//! ReLU layer of H=100 → linear Q-value output). This module implements a
//! general small MLP with: allocation-free forward via [`Scratch`],
//! gradient accumulation into a [`GradBuffer`] (so a batch is averaged
//! before one optimizer step, Eq. 9–11), and flat parameter import/export
//! used by the DQN target-network synchronization.

use crate::activation::Activation;
use crate::matrix::Matrix;
use crate::optim::Optimizer;
use crate::simd;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One fully-connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Dense {
    w: Matrix,
    b: Vec<f32>,
    act: Activation,
}

/// A feedforward MLP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    sizes: Vec<usize>,
}

/// Reusable forward-pass activations: `acts[0]` is the input, `acts[i]` the
/// output of layer `i-1`.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    acts: Vec<Vec<f32>>,
    /// backprop delta buffers, one per layer output
    deltas: Vec<Vec<f32>>,
}

impl Scratch {
    /// `true` when this scratch matches `net`'s layer shapes.
    pub fn matches(&self, net: &Mlp) -> bool {
        self.acts.len() == net.sizes.len()
            && self.acts.iter().zip(&net.sizes).all(|(a, &s)| a.len() == s)
    }

    /// Resize this scratch to `net`'s shapes (no-op when already sized).
    ///
    /// [`Mlp::forward`] deliberately does *not* do this: a shape mismatch
    /// there is a wiring bug (wrong scratch passed for the net), and
    /// silently rebuilding would mask it. Callers that reuse one scratch
    /// across nets of different shapes opt in explicitly here.
    pub fn ensure_shape(&mut self, net: &Mlp) {
        if !self.matches(net) {
            *self = net.make_scratch();
        }
    }
}

/// Reusable minibatch forward/backward buffers: `acts[0]` is the input
/// batch (one row per sample), `acts[i]` the batched output of layer
/// `i-1`; `deltas` mirror `acts[1..]` for backprop.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    acts: Vec<Matrix>,
    deltas: Vec<Matrix>,
    batch: usize,
}

impl BatchScratch {
    /// Resize for `net` at `batch` rows, reusing allocations; steady-state
    /// callers with a fixed batch size pay nothing after the first call.
    pub fn ensure_shape(&mut self, net: &Mlp, batch: usize) {
        let n = net.sizes.len();
        self.acts.resize_with(n, Matrix::default);
        self.deltas.resize_with(n - 1, Matrix::default);
        for (a, &s) in self.acts.iter_mut().zip(&net.sizes) {
            a.resize(batch, s);
        }
        for (d, &s) in self.deltas.iter_mut().zip(&net.sizes[1..]) {
            d.resize(batch, s);
        }
        self.batch = batch;
    }

    /// Batch rows currently allocated.
    pub fn batch(&self) -> usize {
        self.batch
    }
}

/// Accumulated parameter gradients matching an [`Mlp`]'s shape.
#[derive(Debug, Clone)]
pub struct GradBuffer {
    dw: Vec<Matrix>,
    db: Vec<Vec<f32>>,
    /// Number of accumulated samples (for averaging).
    pub samples: usize,
    /// reusable flat parameter/gradient staging for `apply_grads`
    params_buf: Vec<f32>,
    grads_buf: Vec<f32>,
}

impl Mlp {
    /// Build an MLP with the given layer sizes, e.g. `&[4, 100, 5]`.
    ///
    /// Hidden layers use `hidden_act`; the output layer is linear
    /// (Q-values). Weights use Xavier-uniform init from `seed`.
    pub fn new(sizes: &[usize], hidden_act: Activation, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let (fan_in, fan_out) = (sizes[i], sizes[i + 1]);
            let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
            let w = Matrix::from_fn(fan_out, fan_in, |_, _| rng.gen_range(-bound..bound));
            let act = if i + 2 == sizes.len() {
                Activation::Identity
            } else {
                hidden_act
            };
            layers.push(Dense {
                w,
                b: vec![0.0; fan_out],
                act,
            });
        }
        Self {
            layers,
            sizes: sizes.to_vec(),
        }
    }

    /// Layer sizes (input, hidden..., output).
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.sizes[0]
    }

    /// The hidden-layer activation this network was constructed with (the
    /// output layer is always linear). Networks without a hidden layer
    /// report `Identity`. Checkpoint serialization records this so a load
    /// can rebuild the exact architecture.
    pub fn hidden_activation(&self) -> Activation {
        if self.layers.len() >= 2 {
            self.layers
                .first()
                .map(|l| l.act)
                .unwrap_or(Activation::Identity)
        } else {
            Activation::Identity
        }
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        *self.sizes.last().unwrap()
    }

    /// Total number of parameters (weights + biases), the paper's
    /// `SH + HA + H + A` for a single hidden layer (Table IV).
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Prepare (or resize) a scratch buffer for this network.
    pub fn make_scratch(&self) -> Scratch {
        Scratch {
            acts: self.sizes.iter().map(|&s| vec![0.0; s]).collect(),
            deltas: self.sizes[1..].iter().map(|&s| vec![0.0; s]).collect(),
        }
    }

    /// Prepare a gradient buffer matching this network.
    pub fn make_grad_buffer(&self) -> GradBuffer {
        GradBuffer {
            dw: self
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.w.rows(), l.w.cols()))
                .collect(),
            db: self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
            samples: 0,
            params_buf: Vec::new(),
            grads_buf: Vec::new(),
        }
    }

    /// Prepare a minibatch scratch for this network at `batch` rows.
    pub fn make_batch_scratch(&self, batch: usize) -> BatchScratch {
        let mut s = BatchScratch::default();
        s.ensure_shape(self, batch);
        s
    }

    /// Allocation-free forward pass; returns the output activations slice.
    ///
    /// The scratch must already match this network's shapes (build it with
    /// [`Mlp::make_scratch`], or call [`Scratch::ensure_shape`]); a stale
    /// scratch is a wiring bug, reported by `debug_assert` rather than
    /// silently rebuilt.
    pub fn forward<'s>(&self, x: &[f32], scratch: &'s mut Scratch) -> &'s [f32] {
        assert_eq!(x.len(), self.sizes[0], "input dimension mismatch");
        debug_assert!(
            scratch.matches(self),
            "scratch shape does not match the network: call make_scratch/ensure_shape"
        );
        scratch.acts[0].copy_from_slice(x);
        for (i, layer) in self.layers.iter().enumerate() {
            let (inp, out) = {
                let (a, b) = scratch.acts.split_at_mut(i + 1);
                (&a[i], &mut b[0])
            };
            layer.w.matvec_into(inp, out);
            for (o, bias) in out.iter_mut().zip(&layer.b) {
                *o += bias;
            }
            layer.act.apply(out);
        }
        scratch.acts.last().unwrap()
    }

    /// Convenience forward pass allocating only the returned vector.
    ///
    /// Routes through a thread-local scratch (explicitly re-shaped per
    /// call via [`Scratch::ensure_shape`]), so repeated predictions on
    /// same-shaped networks build no intermediate buffers.
    pub fn predict(&self, x: &[f32]) -> Vec<f32> {
        thread_local! {
            static SCRATCH: std::cell::RefCell<Scratch> =
                std::cell::RefCell::new(Scratch::default());
        }
        SCRATCH.with(|s| {
            let mut s = s.borrow_mut();
            s.ensure_shape(self);
            self.forward(x, &mut s).to_vec()
        })
    }

    /// Minibatch forward pass: `xs` holds one input row per sample; the
    /// returned matrix holds one Q-row per sample. One GEMM + one bias
    /// sweep + one activation sweep per layer replaces `B` scalar
    /// forwards, and every element is **bit-identical** to running
    /// [`Mlp::forward`] on the corresponding row (the kernels preserve
    /// per-element accumulation order).
    pub fn forward_batch<'s>(&self, xs: &Matrix, scratch: &'s mut BatchScratch) -> &'s Matrix {
        assert_eq!(xs.cols(), self.sizes[0], "input dimension mismatch");
        scratch.ensure_shape(self, xs.rows());
        scratch.acts[0]
            .as_mut_slice()
            .copy_from_slice(xs.as_slice());
        let be = simd::active();
        for (i, layer) in self.layers.iter().enumerate() {
            let (inp, out) = {
                let (a, b) = scratch.acts.split_at_mut(i + 1);
                (&a[i], &mut b[0])
            };
            layer.w.matmul_into(inp, out);
            simd::add_bias_rows(be, out.as_mut_slice(), &layer.b);
            layer.act.apply_batch(out);
        }
        scratch.acts.last().expect("network has layers")
    }

    /// Index of the maximum output (argmax action), ties broken low.
    pub fn argmax(&self, x: &[f32], scratch: &mut Scratch) -> usize {
        let out = self.forward(x, scratch);
        let mut best = 0;
        for i in 1..out.len() {
            if out[i] > out[best] {
                best = i;
            }
        }
        best
    }

    /// Backpropagate `out_grad` = dL/d(output) for the forward pass whose
    /// activations are in `scratch`, accumulating parameter gradients.
    pub fn backward(&self, scratch: &mut Scratch, out_grad: &[f32], grads: &mut GradBuffer) {
        assert_eq!(out_grad.len(), self.output_dim());
        let n_layers = self.layers.len();
        // delta for output layer: dL/dy * f'(y)
        {
            let y = &scratch.acts[n_layers];
            let delta = &mut scratch.deltas[n_layers - 1];
            let act = self.layers[n_layers - 1].act;
            for i in 0..delta.len() {
                delta[i] = out_grad[i] * act.derivative_from_output(y[i]);
            }
        }
        for l in (0..n_layers).rev() {
            // Accumulate dW += delta ⊗ input, db += delta.
            let (delta, input) = (&scratch.deltas[l], &scratch.acts[l]);
            grads.dw[l].add_outer(1.0, delta, input);
            for (g, d) in grads.db[l].iter_mut().zip(delta) {
                *g += d;
            }
            if l > 0 {
                // delta_{l-1} = (Wᵀ delta) * f'(act_{l-1})
                let (lower, upper) = scratch.deltas.split_at_mut(l);
                let prev_delta = &mut lower[l - 1];
                self.layers[l]
                    .w
                    .matvec_transpose_into(&upper[0], prev_delta);
                let act = self.layers[l - 1].act;
                let y = &scratch.acts[l];
                debug_assert_eq!(y.len(), scratch.acts[l].len());
                for (d, &yv) in prev_delta.iter_mut().zip(scratch.acts[l].iter()) {
                    *d *= act.derivative_from_output(yv);
                }
            }
        }
        grads.samples += 1;
    }

    /// Minibatch backprop for the forward pass whose activations are in
    /// `scratch`: `out_grads` holds one dL/d(output) row per sample.
    ///
    /// Per layer this takes one `deltaᵀ·acts` GEMM for the weight
    /// gradients, one bias-column sweep, and one transposed GEMM for the
    /// delta propagation — replacing `B` scalar backward passes while
    /// accumulating every gradient element in sample order, so the
    /// resulting [`GradBuffer`] is **bit-identical** to sequential
    /// [`Mlp::backward`] calls over the same rows.
    pub fn backward_batch(
        &self,
        scratch: &mut BatchScratch,
        out_grads: &Matrix,
        grads: &mut GradBuffer,
    ) {
        let batch = scratch.batch;
        assert_eq!(out_grads.rows(), batch, "out_grads batch rows");
        assert_eq!(out_grads.cols(), self.output_dim(), "out_grads width");
        let n_layers = self.layers.len();
        // Output-layer delta: dL/dy * f'(y), elementwise over the batch.
        {
            let y = &scratch.acts[n_layers];
            let delta = &mut scratch.deltas[n_layers - 1];
            let act = self.layers[n_layers - 1].act;
            for (d, (&g, &yv)) in delta
                .as_mut_slice()
                .iter_mut()
                .zip(out_grads.as_slice().iter().zip(y.as_slice()))
            {
                *d = g * act.derivative_from_output(yv);
            }
        }
        let be = simd::active();
        for l in (0..n_layers).rev() {
            // dW += deltaᵀ · acts, db += column sums of delta — both
            // accumulated sample-major like the per-sample path.
            let (delta, input) = (&scratch.deltas[l], &scratch.acts[l]);
            grads.dw[l].add_outer_batch(1.0, delta, input);
            simd::sum_rows(be, &mut grads.db[l], delta.as_slice());
            if l > 0 {
                // delta_{l-1} = (Wᵀ delta) * f'(act_{l-1}), batched.
                let (lower, upper) = scratch.deltas.split_at_mut(l);
                let prev_delta = &mut lower[l - 1];
                self.layers[l]
                    .w
                    .matmul_transposed_into(&upper[0], prev_delta);
                self.layers[l - 1]
                    .act
                    .mul_derivative_batch(prev_delta.as_mut_slice(), scratch.acts[l].as_slice());
            }
        }
        grads.samples += batch;
    }

    /// Apply the accumulated (averaged) gradients with the optimizer, then
    /// clear the buffer.
    pub fn apply_grads(&mut self, grads: &mut GradBuffer, opt: &mut dyn Optimizer) {
        if grads.samples == 0 {
            return;
        }
        let scale = 1.0 / grads.samples as f32;
        // Stage through the grad buffer's reusable flat vectors: this runs
        // once per SGD step on the controller hot path, so it must not
        // allocate in steady state.
        let mut params = std::mem::take(&mut grads.params_buf);
        let mut flat_grads = std::mem::take(&mut grads.grads_buf);
        params.clear();
        flat_grads.clear();
        params.reserve(self.param_count());
        flat_grads.reserve(self.param_count());
        for (l, (dw, db)) in self.layers.iter().zip(grads.dw.iter().zip(&grads.db)) {
            params.extend_from_slice(l.w.as_slice());
            params.extend_from_slice(&l.b);
            flat_grads.extend(dw.as_slice().iter().map(|g| g * scale));
            flat_grads.extend(db.iter().map(|g| g * scale));
        }
        opt.step(&mut params, &flat_grads);
        self.load_flat(&params);
        grads.params_buf = params;
        grads.grads_buf = flat_grads;
        grads.clear();
    }

    /// Export all parameters as one flat vector (weights then bias, per layer).
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for l in &self.layers {
            out.extend_from_slice(l.w.as_slice());
            out.extend_from_slice(&l.b);
        }
        out
    }

    /// Import parameters exported by [`Mlp::flat_params`].
    pub fn load_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_count(), "parameter count mismatch");
        let mut off = 0;
        for l in &mut self.layers {
            let wlen = l.w.len();
            l.w.as_mut_slice().copy_from_slice(&flat[off..off + wlen]);
            off += wlen;
            let blen = l.b.len();
            l.b.copy_from_slice(&flat[off..off + blen]);
            off += blen;
        }
    }

    /// Copy another network's parameters into this one (target-net sync).
    ///
    /// Copies into the preallocated weight/bias buffers rather than
    /// cloning `other`'s matrices: the DQN target sync runs this every
    /// `target_sync` steps, and per-sync allocation was visible as
    /// allocator noise in the `controller` bench group. Shapes are fixed
    /// at construction, so after the top-level size check the per-layer
    /// shape equalities are `debug_assert`s.
    pub fn copy_params_from(&mut self, other: &Mlp) {
        assert_eq!(self.sizes, other.sizes, "network shapes differ");
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            debug_assert_eq!(a.w.rows(), b.w.rows(), "weight rows changed across syncs");
            debug_assert_eq!(a.w.cols(), b.w.cols(), "weight cols changed across syncs");
            debug_assert_eq!(a.b.len(), b.b.len(), "bias length changed across syncs");
            a.w.as_mut_slice().copy_from_slice(b.w.as_slice());
            a.b.copy_from_slice(&b.b);
        }
    }
}

impl GradBuffer {
    /// Zero the accumulated gradients.
    pub fn clear(&mut self) {
        for m in &mut self.dw {
            m.clear();
        }
        for b in &mut self.db {
            b.fill(0.0);
        }
        self.samples = 0;
    }

    /// Flatten the accumulated (unscaled) gradient sums in parameter order
    /// (per layer: weights then bias) — the layout of [`Mlp::flat_params`].
    /// Used by tests comparing batched and per-sample accumulation.
    pub fn flat_sums(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for (dw, db) in self.dw.iter().zip(&self.db) {
            out.extend_from_slice(dw.as_slice());
            out.extend_from_slice(db);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Sgd};

    #[test]
    fn forward_shapes_and_determinism() {
        let net = Mlp::new(&[4, 10, 5], Activation::Relu, 1);
        assert_eq!(net.param_count(), 4 * 10 + 10 * 5 + 10 + 5);
        let a = net.predict(&[0.1, 0.2, 0.3, 0.4]);
        let b = net.predict(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let net2 = Mlp::new(&[4, 10, 5], Activation::Relu, 1);
        assert_eq!(net.predict(&[1.0; 4]), net2.predict(&[1.0; 4]));
    }

    #[test]
    fn gradient_check_finite_difference() {
        // Loss L = 0.5 * sum((y - t)^2); out_grad = y - t.
        let mut net = Mlp::new(&[3, 6, 2], Activation::Tanh, 7);
        let x = [0.3f32, -0.7, 0.5];
        let t = [0.2f32, -0.1];
        let mut scratch = net.make_scratch();
        let mut grads = net.make_grad_buffer();
        let y = net.forward(&x, &mut scratch).to_vec();
        let out_grad: Vec<f32> = y.iter().zip(&t).map(|(a, b)| a - b).collect();
        net.backward(&mut scratch, &out_grad, &mut grads);
        // Flatten analytic grads in the same order as flat_params.
        let mut analytic = Vec::new();
        for (dw, db) in grads.dw.iter().zip(&grads.db) {
            analytic.extend_from_slice(dw.as_slice());
            analytic.extend_from_slice(db);
        }
        let loss = |net: &Mlp| -> f32 {
            let y = net.predict(&x);
            0.5 * y
                .iter()
                .zip(&t)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        let params = net.flat_params();
        let eps = 1e-3f32;
        for i in (0..params.len()).step_by(7) {
            let mut p = params.clone();
            p[i] += eps;
            net.load_flat(&p);
            let lp = loss(&net);
            p[i] -= 2.0 * eps;
            net.load_flat(&p);
            let lm = loss(&net);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic[i]).abs() < 2e-2 * (1.0 + fd.abs()),
                "param {i}: fd={fd} analytic={}",
                analytic[i]
            );
        }
        net.load_flat(&params);
    }

    #[test]
    fn learns_xor() {
        let mut net = Mlp::new(&[2, 8, 1], Activation::Tanh, 3);
        let mut opt = Adam::new(0.02);
        let data = [
            ([0.0f32, 0.0], 0.0f32),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        let mut scratch = net.make_scratch();
        let mut grads = net.make_grad_buffer();
        for _ in 0..2000 {
            for (x, t) in &data {
                let y = net.forward(x, &mut scratch)[0];
                net.backward(&mut scratch, &[y - t], &mut grads);
            }
            net.apply_grads(&mut grads, &mut opt);
        }
        for (x, t) in &data {
            let y = net.predict(x)[0];
            assert!((y - t).abs() < 0.2, "xor({x:?}) = {y}, want {t}");
        }
    }

    #[test]
    fn apply_grads_averages_over_batch() {
        // Two identical samples must give the same step as one.
        let net0 = Mlp::new(&[2, 3, 1], Activation::Relu, 5);
        let x = [0.5f32, -0.5];
        let run = |reps: usize| -> Vec<f32> {
            let mut net = net0.clone();
            let mut scratch = net.make_scratch();
            let mut grads = net.make_grad_buffer();
            for _ in 0..reps {
                let y = net.forward(&x, &mut scratch)[0];
                net.backward(&mut scratch, &[y - 1.0], &mut grads);
            }
            net.apply_grads(&mut grads, &mut Sgd::new(0.1));
            net.flat_params()
        };
        let one = run(1);
        let four = run(4);
        for (a, b) in one.iter().zip(&four) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn flat_roundtrip_and_copy() {
        let net = Mlp::new(&[3, 4, 2], Activation::Relu, 9);
        let flat = net.flat_params();
        let mut other = Mlp::new(&[3, 4, 2], Activation::Relu, 10);
        assert_ne!(net.predict(&[1.0; 3]), other.predict(&[1.0; 3]));
        other.load_flat(&flat);
        assert_eq!(net.predict(&[1.0; 3]), other.predict(&[1.0; 3]));
        let mut third = Mlp::new(&[3, 4, 2], Activation::Relu, 11);
        third.copy_params_from(&net);
        assert_eq!(net.predict(&[0.5; 3]), third.predict(&[0.5; 3]));
    }

    #[test]
    fn argmax_selects_best() {
        let net = Mlp::new(&[2, 4, 3], Activation::Relu, 2);
        let mut s = net.make_scratch();
        let x = [0.3, 0.8];
        let out = net.predict(&x);
        let a = net.argmax(&x, &mut s);
        assert!(out.iter().all(|&v| v <= out[a]));
    }

    #[test]
    fn paper_table_iv_param_count() {
        // Table IV: S=4, H=100, A=5 → SH + HA + H + A = 1005 ≈ "1.05K".
        let net = Mlp::new(&[4, 100, 5], Activation::Relu, 0);
        assert_eq!(net.param_count(), 4 * 100 + 100 * 5 + 100 + 5);
        assert_eq!(net.param_count(), 1005);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn forward_checks_input_dim() {
        let net = Mlp::new(&[2, 2], Activation::Relu, 0);
        let mut s = net.make_scratch();
        let _ = net.forward(&[1.0; 3], &mut s);
    }

    #[test]
    fn scratch_ensure_shape_adapts_across_nets() {
        let small = Mlp::new(&[2, 3, 1], Activation::Relu, 0);
        let big = Mlp::new(&[4, 8, 2], Activation::Relu, 0);
        let mut s = Scratch::default();
        assert!(!s.matches(&small));
        s.ensure_shape(&small);
        assert!(s.matches(&small));
        let _ = small.forward(&[0.1, 0.2], &mut s);
        s.ensure_shape(&big);
        assert!(s.matches(&big) && !s.matches(&small));
        let _ = big.forward(&[0.1; 4], &mut s);
    }

    #[test]
    fn forward_batch_matches_per_sample_bitwise() {
        let net = Mlp::new(&[4, 10, 5], Activation::Relu, 11);
        let xs = Matrix::from_fn(9, 4, |r, c| ((r * 4 + c) as f32 * 0.17).sin());
        let mut bs = net.make_batch_scratch(9);
        let out = net.forward_batch(&xs, &mut bs);
        let mut s = net.make_scratch();
        for b in 0..9 {
            let row = net.forward(xs.row(b), &mut s);
            for (a, e) in out.row(b).iter().zip(row) {
                assert_eq!(a.to_bits(), e.to_bits(), "sample {b}");
            }
        }
    }

    #[test]
    fn forward_batch_handles_batch_sizes_zero_and_one() {
        let net = Mlp::new(&[3, 6, 2], Activation::Tanh, 4);
        let mut bs = BatchScratch::default();
        let empty = Matrix::zeros(0, 3);
        let out = net.forward_batch(&empty, &mut bs);
        assert_eq!(out.rows(), 0);
        let one = Matrix::from_rows(1, 3, vec![0.2, -0.4, 0.9]);
        let out = net.forward_batch(&one, &mut bs);
        assert_eq!(out.row(0), net.predict(&[0.2, -0.4, 0.9]).as_slice());
    }

    #[test]
    fn backward_batch_matches_sequential_backward_bitwise() {
        let net = Mlp::new(&[3, 7, 4], Activation::Relu, 8);
        let xs = Matrix::from_fn(6, 3, |r, c| ((r + c) as f32 * 0.31).cos());
        let ts = Matrix::from_fn(6, 4, |r, c| (r as f32 - c as f32) * 0.1);
        // Per-sample reference.
        let mut s = net.make_scratch();
        let mut ref_grads = net.make_grad_buffer();
        for b in 0..6 {
            let y = net.forward(xs.row(b), &mut s).to_vec();
            let og: Vec<f32> = y.iter().zip(ts.row(b)).map(|(a, t)| a - t).collect();
            net.backward(&mut s, &og, &mut ref_grads);
        }
        // Batched.
        let mut bs = net.make_batch_scratch(6);
        let out = net.forward_batch(&xs, &mut bs);
        let mut og = Matrix::zeros(6, 4);
        for b in 0..6 {
            for c in 0..4 {
                *og.get_mut(b, c) = out.get(b, c) - ts.get(b, c);
            }
        }
        let mut batch_grads = net.make_grad_buffer();
        net.backward_batch(&mut bs, &og, &mut batch_grads);
        assert_eq!(batch_grads.samples, ref_grads.samples);
        let bits = |g: &GradBuffer| {
            g.flat_sums()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&batch_grads), bits(&ref_grads));
    }

    #[test]
    fn batched_training_step_equals_per_sample_step() {
        // One SGD step through each datapath must land on identical nets.
        let net0 = Mlp::new(&[2, 5, 3], Activation::Relu, 21);
        let xs = Matrix::from_fn(4, 2, |r, c| (r as f32 + 1.0) * 0.2 - c as f32 * 0.3);
        let step_ref = {
            let mut net = net0.clone();
            let mut s = net.make_scratch();
            let mut g = net.make_grad_buffer();
            for b in 0..4 {
                let y = net.forward(xs.row(b), &mut s)[1];
                net.backward(&mut s, &[0.0, y - 0.5, 0.0], &mut g);
            }
            net.apply_grads(&mut g, &mut Sgd::new(0.1));
            net.flat_params()
        };
        let step_batch = {
            let mut net = net0.clone();
            let mut bs = net.make_batch_scratch(4);
            let mut g = net.make_grad_buffer();
            let mut og = Matrix::zeros(4, 3);
            let out = net.forward_batch(&xs, &mut bs);
            for b in 0..4 {
                *og.get_mut(b, 1) = out.get(b, 1) - 0.5;
            }
            net.backward_batch(&mut bs, &og, &mut g);
            net.apply_grads(&mut g, &mut Sgd::new(0.1));
            net.flat_params()
        };
        let bits = |p: &[f32]| p.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&step_batch), bits(&step_ref));
    }
}
