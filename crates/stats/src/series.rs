//! Time-series utilities: windowed aggregation and smoothing.
//!
//! The paper evaluates learning with "average rewards for each 1K access
//! windows" (Table VI) and plots Fig 6 curves "smoothed by a factor of 10".

/// Accumulates values into fixed-size windows, emitting each window's sum
/// and mean. Used for per-1K-access reward aggregation.
#[derive(Debug, Clone)]
pub struct WindowedMean {
    window: usize,
    acc: f64,
    count: usize,
    /// (sum, mean) per completed window
    completed: Vec<(f64, f64)>,
}

impl WindowedMean {
    /// Aggregate into windows of `window` samples.
    pub fn new(window: usize) -> Self {
        assert!(window > 0);
        Self {
            window,
            acc: 0.0,
            count: 0,
            completed: Vec::new(),
        }
    }

    /// Push one sample.
    pub fn push(&mut self, v: f64) {
        self.acc += v;
        self.count += 1;
        if self.count == self.window {
            self.completed
                .push((self.acc, self.acc / self.window as f64));
            self.acc = 0.0;
            self.count = 0;
        }
    }

    /// Sums of completed windows (the paper's "average rewards of 1K
    /// accesses windows" are window *sums* of ±1 rewards).
    pub fn window_sums(&self) -> Vec<f64> {
        self.completed.iter().map(|&(s, _)| s).collect()
    }

    /// Means of completed windows.
    pub fn window_means(&self) -> Vec<f64> {
        self.completed.iter().map(|&(_, m)| m).collect()
    }

    /// Mean of the per-window sums (Table VI's reported statistic).
    pub fn mean_window_sum(&self) -> f64 {
        if self.completed.is_empty() {
            0.0
        } else {
            self.completed.iter().map(|&(s, _)| s).sum::<f64>() / self.completed.len() as f64
        }
    }

    /// Number of completed windows.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// `true` when no window has completed yet.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }
}

/// Centered-free trailing moving average with the given factor
/// (`smooth(xs, 10)` reproduces the paper's "smoothed by a factor of 10").
pub fn smooth(xs: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor > 0);
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        acc += x;
        if i >= factor {
            acc -= xs[i - factor];
            out.push(acc / factor as f64);
        } else {
            out.push(acc / (i + 1) as f64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_aggregate_sums_and_means() {
        let mut w = WindowedMean::new(4);
        for v in [1.0, 1.0, -1.0, 1.0, 0.0, 0.0, 0.0, 4.0, 9.0] {
            w.push(v);
        }
        assert_eq!(w.len(), 2);
        assert_eq!(w.window_sums(), vec![2.0, 4.0]);
        assert_eq!(w.window_means(), vec![0.5, 1.0]);
        assert_eq!(w.mean_window_sum(), 3.0);
    }

    #[test]
    fn empty_windows() {
        let w = WindowedMean::new(10);
        assert!(w.is_empty());
        assert_eq!(w.mean_window_sum(), 0.0);
    }

    #[test]
    fn smoothing_preserves_length_and_flattens() {
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let s = smooth(&xs, 10);
        assert_eq!(s.len(), xs.len());
        // After warmup the alternating series averages to ~0.
        assert!(s[50].abs() < 0.2);
    }

    #[test]
    fn smoothing_factor_one_is_identity() {
        let xs = vec![3.0, -1.0, 5.0];
        assert_eq!(smooth(&xs, 1), xs);
    }
}
