//! Scalar summaries: arithmetic and geometric means, percent formatting.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of positive values (Fig 12 reports geometric means);
/// non-positive inputs are clamped to a small epsilon so a single zero
/// does not annihilate the summary.
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Format a ratio as a percent string with one decimal ("85.3%").
pub fn percent(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn geo_mean_basic() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geo_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geo_mean(&[]), 0.0);
    }

    #[test]
    fn geo_mean_survives_zero() {
        let g = geo_mean(&[0.0, 4.0]);
        assert!(g >= 0.0 && g.is_finite());
    }

    #[test]
    fn percent_formats() {
        assert_eq!(percent(0.8527), "85.3%");
        assert_eq!(percent(0.0), "0.0%");
    }
}
