//! Plain-text table and series rendering for harness output.
//!
//! Every figure/table binary prints a column-aligned ASCII table (the
//! paper row next to the measured row) plus, for figures, numeric series
//! the reader can plot.

/// Column-aligned ASCII table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |row: &[String]| -> String {
            let mut s = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                s.push_str(cell);
                if i + 1 < ncols {
                    s.push_str(&" ".repeat(width.saturating_sub(cell.chars().count()) + 2));
                }
            }
            s.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Render a numeric series as `label: v0 v1 v2 ...` with fixed precision,
/// sub-sampled to at most `max_points` points for readability.
pub fn render_series(label: &str, xs: &[f64], max_points: usize) -> String {
    assert!(max_points > 0);
    let step = (xs.len() / max_points).max(1);
    let vals: Vec<String> = xs.iter().step_by(step).map(|v| format!("{v:.2}")).collect();
    format!("{label}: {}", vals.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        // The "value" column starts at the same offset in all rows.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[3][col..col + 2], "22");
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        let s = t.render();
        assert!(s.contains('x'));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn series_subsamples() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = render_series("r", &xs, 10);
        let n = s.split_whitespace().count() - 1;
        assert!(n <= 11, "{s}");
        assert!(s.starts_with("r:"));
    }
}
