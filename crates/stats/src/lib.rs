//! # resemble-stats
//!
//! Metric and reporting utilities for the ReSemble harness: windowed
//! reward series (Table VI / Fig 6), curve smoothing, geometric means
//! (Fig 12 averages), and plain-text table/series rendering used by every
//! figure/table binary.

#![warn(missing_docs)]

pub mod series;
pub mod summary;
pub mod table;

pub use series::{smooth, WindowedMean};
pub use summary::{geo_mean, mean, percent};
pub use table::{render_series, Table};
